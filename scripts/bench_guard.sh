#!/usr/bin/env bash
# Benchmark regression guard over the checked-in artifact files.
#
# Checks BENCH_PARALLEL.json (dhw_parallel, JSONL),
# BENCH_COLDCACHE.json (bench_coldcache, JSON array) and
# BENCH_UPDATES.json (bench_updates, JSONL) against floors:
#
#  * Correctness gates are unconditional: every parallel run must be
#    byte-identical to the sequential one, and cold-cache query answers
#    must not depend on the record format.
#  * The parallel speedup floor is hardware-aware. Real scaling needs
#    real cores; the artifacts record hardware_threads at measurement
#    time, and the floor keys on that, not on where the guard runs:
#      hw >= 4: >= 2.0x at 4 threads (the scaling target)
#      hw = 2-3: >= 1.3x at 2 threads
#      hw < 2: no-regression only -- every multi-thread run >= 0.9x
#    (on a single hardware thread a speedup is physically impossible;
#    the guard only insists the chunked scheduler costs ~nothing).
#  * Compressed records must cut cold-cache bytes_read by >= 25% at
#    every buffer size, for both layouts.
#  * The mixed update stream (insert/delete/move/rename with neighbour
#    merges) must stay query-correct, answer byte-equivalently to a
#    fresh bulkload of the resulting document, and keep post-stream page
#    utilization within 15% of the fresh-build baseline.
#  * Durable insert latency: with b = the WAL-off baseline insert cost,
#    e = the every-op-fsync cost and g = the group-commit cost, group
#    commit must stay under 1.5x the WAL-off baseline AND reclaim at
#    least half of the every-op durability gap:
#        g <= max(1.15*b, b + 0.5*(e - b))
#    The 1.15*b term covers the no-gap regime (an in-memory backend
#    makes fsync nearly free, so e ~ b and the reclaim criterion is
#    vacuous -- only the flusher handoff overhead remains); once fsync
#    has a real price (e >= 1.3*b) the gap term dominates and group
#    commit must genuinely buy half of it back. Like the parallel
#    floor, the handoff allowance is hardware-aware: with a single
#    hardware thread at measurement time the mutator and the background
#    flusher share one core, so every batch handoff is a forced context
#    switch -- a constant per-batch cost, not a proportional one -- and
#    the allowance widens to the unconditional 1.5*b cap.
#  * Snapshot serving must scale: every reader's answers must match its
#    pinned-version oracle, and -- hardware-aware like the parallel
#    floor, keyed on the recorded hardware_threads --
#      hw >= 4: 4 pinned readers >= 2.0x the single-reader sweep rate
#      hw < 4:  no-regression only -- every multi-reader rate >= 0.85x
#               the single-reader rate (extra readers may not make the
#               shared lock or the pool a bottleneck).
#
# Usage: scripts/bench_guard.sh  (exits nonzero on any violation)
set -euo pipefail
cd "$(dirname "$0")/.."

command -v jq > /dev/null || { echo "bench_guard: jq not found" >&2; exit 2; }
fail=0
say_fail() { echo "bench_guard FAIL: $*" >&2; fail=1; }

# ------------------------------------------------ parallel partitioning --
if [[ ! -f BENCH_PARALLEL.json ]]; then
  say_fail "BENCH_PARALLEL.json missing"
else
  if jq -es 'map(.identical) | all' BENCH_PARALLEL.json > /dev/null; then :
  else
    say_fail "a parallel run was not byte-identical to sequential"
  fi
  hw=$(jq -s '.[0].hardware_threads // 1' BENCH_PARALLEL.json)
  if (( hw >= 4 )); then
    floor=2.0 at_threads=4
  elif (( hw >= 2 )); then
    floor=1.3 at_threads=2
  else
    floor=0.9 at_threads=0   # 0 = every multi-thread row
  fi
  bad=$(jq -s --argjson floor "$floor" --argjson t "$at_threads" \
    '[.[] | select(.threads > 1)
         | select($t == 0 or .threads == $t)
         | select(.speedup_vs_seq < $floor)] | length' BENCH_PARALLEL.json)
  if (( bad > 0 )); then
    say_fail "speedup below the ${floor}x floor for hw=${hw} threads" \
             "(see BENCH_PARALLEL.json)"
  fi
  echo "bench_guard: parallel OK (hw=${hw}, floor=${floor}x)"
fi

# ------------------------------------------------------- cold cache -----
if [[ ! -f BENCH_COLDCACHE.json ]]; then
  say_fail "BENCH_COLDCACHE.json missing"
else
  if jq -e '[.[] | select(.metric == "compression")
             | .results_equivalent] | length > 0 and all' \
      BENCH_COLDCACHE.json > /dev/null; then :
  else
    say_fail "query results differ between record formats"
  fi
  bad=$(jq '[.[] | select(.metric == "compression")
             | select(.km_bytes_read_reduction_pct < 25 or
                      .ekm_bytes_read_reduction_pct < 25)] | length' \
      BENCH_COLDCACHE.json)
  if (( bad > 0 )); then
    say_fail "v3 bytes_read reduction under the 25% floor" \
             "(see BENCH_COLDCACHE.json compression rows)"
  fi
  echo "bench_guard: cold-cache OK (>= 25% fewer bytes read with v3)"
fi

# ---------------------------------------------------- update streams ----
if [[ ! -f BENCH_UPDATES.json ]]; then
  say_fail "BENCH_UPDATES.json missing"
else
  mixed=$(jq -s '[.[] | select(.bench == "store_updates_mixed")] | length' \
      BENCH_UPDATES.json)
  if (( mixed == 0 )); then
    say_fail "no store_updates_mixed row in BENCH_UPDATES.json" \
             "(re-run bench_updates)"
  else
    if jq -es '[.[] | select(.bench == "store_updates_mixed")
               | .queries_match and .answers_equivalent] | all' \
        BENCH_UPDATES.json > /dev/null; then :
    else
      say_fail "mixed update stream diverged from the fresh-build oracle"
    fi
    bad=$(jq -s '[.[] | select(.bench == "store_updates_mixed")
               | select(.util_drift_pct > 15)] | length' BENCH_UPDATES.json)
    if (( bad > 0 )); then
      say_fail "post-stream page utilization drifted more than 15%" \
               "from the fresh-build baseline (see BENCH_UPDATES.json)"
    fi
    drift=$(jq -s '[.[] | select(.bench == "store_updates_mixed")
               | .util_drift_pct] | max' BENCH_UPDATES.json)
    echo "bench_guard: updates OK (mixed stream oracle-equivalent," \
         "util drift ${drift}% <= 15%)"
  fi

  # ------------------------------------------- durable insert latency ---
  b=$(jq -s '[.[] | select(.bench == "store_updates_summary")
             | .insert_us] | first // empty' BENCH_UPDATES.json)
  e=$(jq -s '[.[] | select(.bench == "store_updates_wal" and
                           .sync_policy == "every_op")
             | .insert_us] | first // empty' BENCH_UPDATES.json)
  g=$(jq -s '[.[] | select(.bench == "store_updates_wal" and
                           .sync_policy == "group_commit")
             | .insert_us] | first // empty' BENCH_UPDATES.json)
  if [[ -z "$b" || -z "$e" || -z "$g" ]]; then
    say_fail "missing durable-latency rows (want store_updates_summary" \
             "plus store_updates_wal rows for every_op and group_commit;" \
             "re-run bench_updates)"
  else
    if ! jq -en --argjson b "$b" --argjson g "$g" \
        '$g <= 1.5 * $b' > /dev/null; then
      say_fail "group-commit durable insert latency ${g}us exceeds 1.5x" \
               "the ${b}us WAL-off baseline"
    fi
    whw=$(jq -s '[.[] | select(.bench == "store_updates_wal")
               | .hardware_threads] | first // 1' BENCH_UPDATES.json)
    if (( whw >= 2 )); then slack=1.15; else slack=1.5; fi
    if ! jq -en --argjson b "$b" --argjson e "$e" --argjson g "$g" \
        --argjson s "$slack" \
        '$g <= ([$s * $b, $b + 0.5 * ($e - $b)] | max)' > /dev/null; then
      say_fail "group commit reclaims less than half of the every-op" \
               "durability gap (baseline ${b}us, every_op ${e}us," \
               "group_commit ${g}us, hw=${whw})"
    fi
    batch=$(jq -s '[.[] | select(.bench == "store_updates_wal" and
                                 .sync_policy == "group_commit")
                   | .mean_batch_ops] | first' BENCH_UPDATES.json)
    echo "bench_guard: durable latency OK (baseline ${b}us, every_op" \
         "${e}us, group_commit ${g}us, mean batch ${batch} ops)"
  fi

  # --------------------------------------------- snapshot serving -------
  serve=$(jq -s '[.[] | select(.bench == "store_updates_serve")] | length' \
      BENCH_UPDATES.json)
  if (( serve == 0 )); then
    say_fail "no store_updates_serve row in BENCH_UPDATES.json" \
             "(re-run bench_updates)"
  else
    if jq -es '[.[] | select(.bench == "store_updates_serve")
               | .answers_equivalent] | all' BENCH_UPDATES.json \
        > /dev/null; then :
    else
      say_fail "a serving reader diverged from its pinned-version oracle"
    fi
    shw=$(jq -s '[.[] | select(.bench == "store_updates_serve")
               | .hardware_threads] | first // 1' BENCH_UPDATES.json)
    one=$(jq -s '[.[] | select(.bench == "store_updates_serve" and
                               .readers == 1)
               | .sweeps_per_sec] | first // empty' BENCH_UPDATES.json)
    if [[ -z "$one" ]]; then
      say_fail "no single-reader store_updates_serve row" \
               "(re-run bench_updates)"
    elif (( shw >= 4 )); then
      wide=$(jq -s '[.[] | select(.bench == "store_updates_serve" and
                                  .readers == 4)
                 | .sweeps_per_sec] | first // empty' BENCH_UPDATES.json)
      if [[ -z "$wide" ]]; then
        say_fail "hardware_threads=${shw} but no 4-reader serve row" \
                 "(re-run bench_updates)"
      elif ! jq -en --argjson w "$wide" --argjson o "$one" \
          '$w >= 2.0 * $o' > /dev/null; then
        say_fail "4-reader sweep rate ${wide}/s under the 2x floor over" \
                 "the ${one}/s single-reader rate"
      else
        echo "bench_guard: serving OK (hw=${shw}, 4 readers ${wide}/s" \
             ">= 2x ${one}/s)"
      fi
    else
      # Too few cores at measurement time for real scaling: only insist
      # extra readers don't drag throughput below the single-reader rate.
      bad=$(jq -s --argjson o "$one" \
          '[.[] | select(.bench == "store_updates_serve" and .readers > 1)
               | select(.sweeps_per_sec < 0.85 * $o)] | length' \
          BENCH_UPDATES.json)
      if (( bad > 0 )); then
        say_fail "multi-reader serving under 0.85x the single-reader" \
                 "rate (see BENCH_UPDATES.json serve rows)"
      else
        echo "bench_guard: serving OK (hw=${shw}, no-regression floor" \
             "0.85x over ${one}/s)"
      fi
    fi
  fi
  # ------------------------------------------- graceful degradation ----
  degraded=$(jq -s '[.[] | select(.bench == "store_updates_degraded")]
                    | length' BENCH_UPDATES.json)
  if (( degraded == 0 )); then
    say_fail "no store_updates_degraded row in BENCH_UPDATES.json" \
             "(re-run bench_updates)"
  else
    if jq -es '[.[] | select(.bench == "store_updates_degraded")
               | .answers_equivalent and .rehabilitated
                 and .degraded_sweeps >= 1 and .ops_after_rehab >= 1]
               | all' BENCH_UPDATES.json > /dev/null; then
      rate=$(jq -s '[.[] | select(.bench == "store_updates_degraded")
                 | .sweeps_per_sec] | first' BENCH_UPDATES.json)
      echo "bench_guard: degraded serving OK (${rate} sweeps/s while" \
           "degraded, rehabilitation re-earned full health)"
    else
      say_fail "degraded leg broke an invariant: a demoted store must" \
               "keep answering correctly and rehabilitate cleanly" \
               "(see store_updates_degraded in BENCH_UPDATES.json)"
    fi
  fi
fi

(( fail == 0 )) && echo "bench_guard OK"
exit "$fail"
