#!/usr/bin/env bash
# Tier-1 verification: the standard build + full test suite, then a
# ThreadSanitizer build of the parallel-DHW machinery so the work-stealing
# pool is race-checked on every run.
set -euo pipefail
cd "$(dirname "$0")/.."

# 1. Standard tier-1: build everything, run all tests.
cmake -B build -S .
cmake --build build -j
(cd build && ctest --output-on-failure -j)

# 2. Race check: the determinism test (and the pool's own tests) under
#    -fsanitize=thread, plus the mutable-store path (its inserts run the
#    parallel-free update machinery but share the pooled workspaces), the
#    WAL group-commit engine (mutator thread vs background flusher:
#    the buffered append path, the durable-watermark handoff and the
#    power-loss matrix all cross the flusher's mutex), and the snapshot
#    serving path (N pinned readers racing one mixed-op writer through
#    the store's shared lock, the copy-on-write retire/reclaim chains
#    and the shared buffer pool).
#    Benchmarks/examples are skipped to keep it quick.
cmake -B build-tsan -S . -DNATIX_SANITIZE=thread \
  -DNATIX_BUILD_BENCHMARKS=OFF -DNATIX_BUILD_EXAMPLES=OFF
cmake --build build-tsan -j --target dhw_parallel_test thread_pool_test \
  store_updates_test wal_recovery_test store_concurrency_test
(cd build-tsan && ./tests/dhw_parallel_test && ./tests/thread_pool_test \
  && ./tests/store_updates_test \
  && ./tests/store_concurrency_test \
  && ./tests/wal_recovery_test --gtest_filter='WalGroupCommitTest.*:DurableStoreTest.TransientAppendFaultsAreAbsorbedByRetry:DurableStoreTest.FsyncFailurePoisonsLikeAppendFailure:DurableStoreTest.GroupCommitBatchesStoreFsyncs:DurableStoreTest.PowerLossMatrixKeepsEveryAcknowledgedOp')

# 2b. fsck / corruption-repair smoke: exercise the CLI workflow the
#     integrity layer exists for -- a durable mixed update stream
#     (insert/delete/move/rename) with a flushed page file, recovery, a
#     clean fsck, a --fix-hints pass that must leave zero stale placement
#     hints behind, then an injected bit flip that fsck must catch
#     (exit 1) and distinct recover/fsck exit codes for a missing log
#     (exit 3).
SMOKE=$(mktemp -d)
trap 'rm -rf "$SMOKE"' EXIT
./build/examples/natix_cli update sigmod 500 256 0.02 1 \
  --wal "$SMOKE/w.log" --pages "$SMOKE/p.pages" > /dev/null
./build/examples/natix_cli recover "$SMOKE/w.log" > /dev/null
# The --sync knob: a strongest-guarantee every-op run must also recover.
./build/examples/natix_cli update sigmod 200 256 0.02 1 \
  --wal "$SMOKE/we.log" --sync every > /dev/null
./build/examples/natix_cli recover "$SMOKE/we.log" > /dev/null
./build/examples/natix_cli fsck "$SMOKE/w.log" --pages "$SMOKE/p.pages" \
  > /dev/null
./build/examples/natix_cli fsck "$SMOKE/w.log" --pages "$SMOKE/p.pages" \
  --fix-hints > /dev/null
if ./build/examples/natix_cli fsck "$SMOKE/w.log" \
    --pages "$SMOKE/p.pages" | grep -q 'stale placement hint'; then
  echo "fsck smoke FAILED: stale hints survived --fix-hints" >&2; exit 1
fi
printf '\xff' | dd of="$SMOKE/p.pages" bs=1 seek=300 conv=notrunc \
  status=none
if ./build/examples/natix_cli fsck "$SMOKE/w.log" \
    --pages "$SMOKE/p.pages" > /dev/null; then
  echo "fsck smoke FAILED: corruption went undetected" >&2; exit 1
fi
if ./build/examples/natix_cli fsck "$SMOKE/nope.log" 2> /dev/null; then
  echo "fsck smoke FAILED: missing log not reported" >&2; exit 1
fi

# 3. Memory check: the update/storage surface under ASan+UBSan -- record
#    splits, relocations and page compaction move raw bytes around, so
#    this is where lifetime bugs would hide. The WAL/recovery suite
#    (crash matrix included) runs here too, as does the integrity suite
#    (read-fault injection, fsck, corruption matrix, self-healing
#    repair): both parse and rewrite raw bytes a simulated fault
#    mangled, the other place lifetime bugs would hide.
cmake -B build-asan -S . -DNATIX_SANITIZE=address,undefined \
  -DNATIX_BUILD_BENCHMARKS=OFF -DNATIX_BUILD_EXAMPLES=OFF
cmake --build build-asan -j --target store_updates_test updates_test \
  storage_test wal_recovery_test fsck_repair_test record_codec_test \
  content_codec_test store_evict_test query_axis_matrix_test \
  store_chaos_test
(cd build-asan && ./tests/store_updates_test && ./tests/updates_test \
  && ./tests/storage_test && ./tests/wal_recovery_test \
  && ./tests/fsck_repair_test \
  && ./tests/store_chaos_test)

# 3b. Evicted-mode memory check: the record codec, the release/
#     rematerialize cycle and the query+updates+WAL surface with the
#     document *released* and navigation running through a tiny buffer
#     pool. Every byte a query reads then comes from decoded record
#     payloads, so ASan/UBSan sees the whole zero-copy RecordView path.
(cd build-asan && ./tests/record_codec_test && ./tests/content_codec_test \
  && ./tests/store_evict_test && ./tests/query_axis_matrix_test)

# 4. Assert-free build: CMAKE_BUILD_TYPE=Release defines NDEBUG, which
#    compiles every assert() out. All input validation must ride on
#    Status returns, never on asserts -- this leg proves the full suite
#    passes with asserts gone.
cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release \
  -DNATIX_BUILD_BENCHMARKS=OFF -DNATIX_BUILD_EXAMPLES=OFF
cmake --build build-release -j
(cd build-release && ctest --output-on-failure -j)

echo "tier1 OK (tests + TSan race check + ASan/UBSan memory check + NDEBUG)"
