#!/usr/bin/env bash
# Tier-1 verification: the standard build + full test suite, then a
# ThreadSanitizer build of the parallel-DHW machinery so the work-stealing
# pool is race-checked on every run.
set -euo pipefail
cd "$(dirname "$0")/.."

# 1. Standard tier-1: build everything, run all tests.
cmake -B build -S .
cmake --build build -j
(cd build && ctest --output-on-failure -j)

# 2. Race check: the determinism test (and the pool's own tests) under
#    -fsanitize=thread. Benchmarks/examples are skipped to keep it quick.
cmake -B build-tsan -S . -DNATIX_SANITIZE=thread \
  -DNATIX_BUILD_BENCHMARKS=OFF -DNATIX_BUILD_EXAMPLES=OFF
cmake --build build-tsan -j --target dhw_parallel_test thread_pool_test
(cd build-tsan && ./tests/dhw_parallel_test && ./tests/thread_pool_test)

echo "tier1 OK (tests + TSan race check)"
