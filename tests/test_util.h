#ifndef NATIX_TESTS_TEST_UTIL_H_
#define NATIX_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <string>
#include <string_view>

#include "common/rng.h"
#include "tree/partitioning.h"
#include "tree/tree.h"
#include "tree/tree_spec.h"

namespace natix {
namespace testing_util {

/// Builds a tree from a spec string, failing the test on parse errors.
inline Tree MustParse(std::string_view spec) {
  Result<Tree> t = ParseTreeSpec(spec);
  EXPECT_TRUE(t.ok()) << t.status().ToString();
  return std::move(t).value();
}

/// The running example of Sec. 2.1 (Fig. 3).
inline Tree Fig3Tree() {
  return MustParse("a:3(b:2 c:1(d:2 e:2) f:1 g:1 h:2)");
}

/// The greedy-failure example of Sec. 3.3.1 (Fig. 6), K = 5:
/// GHDW needs 4 partitions, the optimum is 3.
inline Tree Fig6Tree() { return MustParse("a:5(b:1 c:1(d:2 e:2) f:1)"); }

/// The EKM-failure example of Sec. 4.3.4 (Fig. 9), K = 5:
/// EKM produces 3 partitions, the optimum is 2.
inline Tree Fig9Tree() { return MustParse("a:2(b:4 c:1(d:1 e:1))"); }

/// Random tree with `n` nodes: each new node is appended to a random
/// existing node, weights uniform in [1, max_weight].
inline Tree RandomTree(Rng& rng, size_t n, Weight max_weight) {
  Tree t;
  t.AddRoot(static_cast<Weight>(rng.NextInRange(1, max_weight)));
  for (size_t i = 1; i < n; ++i) {
    const NodeId parent = static_cast<NodeId>(rng.NextBounded(t.size()));
    t.AppendChild(parent, static_cast<Weight>(rng.NextInRange(1, max_weight)));
  }
  return t;
}

/// Random *flat* tree: a root with n - 1 leaf children.
inline Tree RandomFlatTree(Rng& rng, size_t n, Weight max_weight) {
  Tree t;
  t.AddRoot(static_cast<Weight>(rng.NextInRange(1, max_weight)));
  for (size_t i = 1; i < n; ++i) {
    t.AppendChild(t.root(),
                  static_cast<Weight>(rng.NextInRange(1, max_weight)));
  }
  return t;
}

/// Asserts that `p` is a structurally valid, feasible partitioning and
/// returns its analysis.
inline PartitionAnalysis MustBeFeasible(const Tree& tree,
                                        const Partitioning& p,
                                        TotalWeight limit,
                                        const std::string& context = "") {
  Result<PartitionAnalysis> a = Analyze(tree, p, limit);
  EXPECT_TRUE(a.ok()) << context << ": " << a.status().ToString();
  if (a.ok()) {
    EXPECT_TRUE(a->feasible)
        << context << ": infeasible, max weight " << a->max_weight
        << " limit " << limit << " partitioning " << ToString(tree, p);
  }
  return a.ok() ? *a : PartitionAnalysis{};
}

}  // namespace testing_util
}  // namespace natix

#endif  // NATIX_TESTS_TEST_UTIL_H_
