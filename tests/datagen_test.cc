#include "datagen/generator.h"

#include <gtest/gtest.h>

#include "xml/importer.h"

namespace natix {
namespace {

TEST(DatagenTest, RegistryComplete) {
  const auto& gens = DocumentGenerators();
  ASSERT_EQ(gens.size(), 6u);
  EXPECT_EQ(gens[0].name, "sigmod");
  EXPECT_EQ(gens[5].name, "xmark");
  EXPECT_NE(FindGenerator("mondial"), nullptr);
  EXPECT_EQ(FindGenerator("nope"), nullptr);
  EXPECT_FALSE(GenerateDocument("nope", 1, 1.0).ok());
}

TEST(DatagenTest, Deterministic) {
  for (const auto& g : DocumentGenerators()) {
    const std::string a = g.generate(7, 0.02);
    const std::string b = g.generate(7, 0.02);
    const std::string c = g.generate(8, 0.02);
    EXPECT_EQ(a, b) << g.name;
    EXPECT_NE(a, c) << g.name << " (different seeds must differ)";
  }
}

TEST(DatagenTest, AllDocumentsParseAndImport) {
  WeightModel model;
  model.max_node_slots = 256;
  for (const auto& g : DocumentGenerators()) {
    const std::string xml = g.generate(42, 0.05);
    const Result<ImportedDocument> imp = ImportXml(xml, model);
    ASSERT_TRUE(imp.ok()) << g.name << ": " << imp.status().ToString();
    EXPECT_TRUE(imp->tree.Validate().ok()) << g.name;
    EXPECT_GT(imp->tree.size(), 100u) << g.name;
    EXPECT_LE(imp->tree.MaxNodeWeight(), 256u) << g.name;
  }
}

TEST(DatagenTest, ScaleGrowsDocuments) {
  for (const auto& g : DocumentGenerators()) {
    const std::string small = g.generate(1, 0.02);
    const std::string large = g.generate(1, 0.08);
    EXPECT_GT(large.size(), small.size() * 2) << g.name;
  }
}

TEST(DatagenTest, NodeCountsTrackPaperAtFullScale) {
  // Scale 1.0 must land within 20% of the paper's Table 1 node counts.
  // (partsupp/orders are near-exact; the text-heavy ones are calibrated.)
  for (const auto& g : DocumentGenerators()) {
    const std::string xml = g.generate(42, 1.0);
    const Result<ImportedDocument> imp = ImportXml(xml, WeightModel());
    ASSERT_TRUE(imp.ok()) << g.name;
    const double ratio =
        static_cast<double>(imp->tree.size()) / g.paper_nodes;
    EXPECT_GT(ratio, 0.8) << g.name << " nodes=" << imp->tree.size();
    EXPECT_LT(ratio, 1.2) << g.name << " nodes=" << imp->tree.size();
  }
}

TEST(DatagenTest, XmarkHasXPathMarkVocabulary) {
  const std::string xml = GenerateXmark(3, 0.05);
  const Result<XmlDocument> doc = XmlDocument::Parse(xml);
  ASSERT_TRUE(doc.ok());
  // Count element names the XPathMark queries Q1-Q7 rely on.
  size_t items = 0, keywords = 0, listitems = 0, mails = 0, parlists = 0,
         namerica = 0, samerica = 0, closed = 0;
  for (XmlDocument::NodeIndex v = 0; v < doc->size(); ++v) {
    if (doc->KindOf(v) != XmlNodeKind::kElement) continue;
    const std::string_view name = doc->NameOf(v);
    items += name == "item";
    keywords += name == "keyword";
    listitems += name == "listitem";
    mails += name == "mail";
    parlists += name == "parlist";
    namerica += name == "namerica";
    samerica += name == "samerica";
    closed += name == "closed_auction";
  }
  EXPECT_GT(items, 50u);
  EXPECT_GT(keywords, 100u);
  EXPECT_GT(listitems, 50u);
  EXPECT_GT(mails, 20u);
  EXPECT_GT(parlists, 20u);
  EXPECT_EQ(namerica, 1u);
  EXPECT_EQ(samerica, 1u);
  EXPECT_GT(closed, 10u);
}

TEST(DatagenTest, XmarkQ2PathExists) {
  // Q2 navigates /site/closed_auctions/closed_auction/annotation/
  // description/parlist/listitem/text/keyword; the generator must emit at
  // least one full such chain.
  const std::string xml = GenerateXmark(3, 0.05);
  const Result<XmlDocument> doc = XmlDocument::Parse(xml);
  ASSERT_TRUE(doc.ok());
  size_t chains = 0;
  for (XmlDocument::NodeIndex v = 0; v < doc->size(); ++v) {
    if (doc->NameOf(v) != "keyword") continue;
    static constexpr std::string_view kPath[] = {
        "text", "listitem", "parlist", "description", "annotation",
        "closed_auction", "closed_auctions", "site"};
    XmlDocument::NodeIndex cur = doc->Parent(v);
    bool match = true;
    for (const std::string_view step : kPath) {
      if (cur == XmlDocument::kNoNode || doc->NameOf(cur) != step) {
        match = false;
        break;
      }
      cur = doc->Parent(cur);
    }
    chains += match;
  }
  EXPECT_GT(chains, 0u);
}

TEST(DatagenTest, RelationalDocumentsAreFlatTuples) {
  const std::string xml = GeneratePartsupp(5, 0.02);
  const Result<XmlDocument> doc = XmlDocument::Parse(xml);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->NameOf(doc->root()), "partsupp");
  // Every child of the root is a <T> tuple with only leaf-element
  // children.
  for (auto t = doc->FirstChild(doc->root()); t != XmlDocument::kNoNode;
       t = doc->NextSibling(t)) {
    EXPECT_EQ(doc->NameOf(t), "T");
    for (auto col = doc->FirstChild(t); col != XmlDocument::kNoNode;
         col = doc->NextSibling(col)) {
      EXPECT_EQ(doc->KindOf(col), XmlNodeKind::kElement);
      for (auto val = doc->FirstChild(col); val != XmlDocument::kNoNode;
           val = doc->NextSibling(val)) {
        EXPECT_EQ(doc->KindOf(val), XmlNodeKind::kText);
      }
    }
  }
}

TEST(DatagenTest, MondialIsNested) {
  const std::string xml = GenerateMondial(5, 0.05);
  const Result<ImportedDocument> imp = ImportXml(xml, WeightModel());
  ASSERT_TRUE(imp.ok());
  EXPECT_GE(imp->tree.Height(), 4);  // mondial/country/province/city/name
}

}  // namespace
}  // namespace natix
