#include "tree/tree_spec.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace natix {
namespace {

TEST(TreeSpecTest, SingleNode) {
  const Tree t = testing_util::MustParse("a:3");
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.LabelOf(0), "a");
  EXPECT_EQ(t.WeightOf(0), 3u);
}

TEST(TreeSpecTest, DefaultWeightIsOne) {
  const Tree t = testing_util::MustParse("a(b c)");
  EXPECT_EQ(t.WeightOf(0), 1u);
  EXPECT_EQ(t.WeightOf(1), 1u);
  EXPECT_EQ(t.ChildCount(0), 2u);
}

TEST(TreeSpecTest, WeightOnlyNodes) {
  const Tree t = testing_util::MustParse(":5(:2 :3)");
  EXPECT_EQ(t.WeightOf(0), 5u);
  EXPECT_EQ(t.WeightOf(1), 2u);
  EXPECT_EQ(t.WeightOf(2), 3u);
  EXPECT_EQ(t.LabelOf(0), "");
}

TEST(TreeSpecTest, Fig3RoundTrip) {
  const std::string spec = "a:3(b:2 c:1(d:2 e:2) f:1 g:1 h:2)";
  const Tree t = testing_util::MustParse(spec);
  EXPECT_EQ(TreeToSpec(t), spec);
}

TEST(TreeSpecTest, NestedDeep) {
  const Tree t = testing_util::MustParse("a(b(c(d(e))))");
  EXPECT_EQ(t.size(), 5u);
  EXPECT_EQ(t.Height(), 4);
}

TEST(TreeSpecTest, ExtraWhitespace) {
  const Tree t = testing_util::MustParse("  a:2 ( b:1   c:3 ) ");
  EXPECT_EQ(t.size(), 3u);
  EXPECT_EQ(t.WeightOf(2), 3u);
}

TEST(TreeSpecTest, RejectsUnterminatedParen) {
  EXPECT_FALSE(ParseTreeSpec("a(b").ok());
}

TEST(TreeSpecTest, RejectsTrailingInput) {
  EXPECT_FALSE(ParseTreeSpec("a b").ok());
}

TEST(TreeSpecTest, RejectsZeroWeight) {
  EXPECT_FALSE(ParseTreeSpec("a:0").ok());
}

TEST(TreeSpecTest, RejectsEmptyInput) { EXPECT_FALSE(ParseTreeSpec("").ok()); }

TEST(TreeSpecTest, RejectsMissingWeightDigits) {
  EXPECT_FALSE(ParseTreeSpec("a:").ok());
}

TEST(TreeSpecTest, RoundTripRandomTrees) {
  Rng rng(7);
  for (int i = 0; i < 20; ++i) {
    const Tree t = testing_util::RandomTree(rng, 50, 9);
    const std::string spec = TreeToSpec(t);
    const Tree back = testing_util::MustParse(spec);
    EXPECT_EQ(TreeToSpec(back), spec);
    EXPECT_EQ(back.size(), t.size());
    EXPECT_EQ(back.TotalTreeWeight(), t.TotalTreeWeight());
  }
}

}  // namespace
}  // namespace natix
