// Direct unit tests for the per-node reduction rules shared by the batch
// algorithms and the streaming bulkloader (core/reduction.h). These pin
// the exact cut decisions, independent of any tree traversal.
#include "core/reduction.h"

#include <gtest/gtest.h>

namespace natix {
namespace {

std::vector<ChildPart> Parts(std::initializer_list<TotalWeight> residuals) {
  std::vector<ChildPart> out;
  NodeId id = 100;
  for (const TotalWeight r : residuals) {
    out.push_back({id++, r, 1});
  }
  return out;
}

TEST(RsReduceTest, NoCutWhenFits) {
  Partitioning p;
  const auto children = Parts({3, 3});
  EXPECT_EQ(RsReduce(2, children, 10, &p), 8u);
  EXPECT_EQ(p.size(), 0u);
}

TEST(RsReduceTest, PacksRightToLeftUpToLimit) {
  Partitioning p;
  // own 5 + {1,1,1,1} = 9 > 5: one interval (c1..c4) of weight 4.
  const auto children = Parts({1, 1, 1, 1});
  EXPECT_EQ(RsReduce(5, children, 5, &p), 5u);
  ASSERT_EQ(p.size(), 1u);
  EXPECT_EQ(p[0].first, 100u);
  EXPECT_EQ(p[0].last, 103u);
}

TEST(RsReduceTest, StopsCuttingWhenResidualFits) {
  Partitioning p;
  // own 1 + {2, 2} = 5 > 4: cutting only the rightmost child suffices.
  const auto children = Parts({2, 2});
  EXPECT_EQ(RsReduce(1, children, 4, &p), 3u);
  ASSERT_EQ(p.size(), 1u);
  EXPECT_EQ(p[0].first, 101u);
  EXPECT_EQ(p[0].last, 101u);
}

TEST(RsReduceTest, MultipleIntervals) {
  Partitioning p;
  // own 4 + {3,3,3,3} = 16, K = 4: every child must go; 3+3 > 4 so each
  // child is its own interval... 3 <= 4 but 3+3=6 > 4: four singletons?
  // Packing right-to-left: (c4)=3, then (c3)=3, ... residual 4 after all.
  const auto children = Parts({3, 3, 3, 3});
  EXPECT_EQ(RsReduce(4, children, 4, &p), 4u);
  EXPECT_EQ(p.size(), 4u);
}

TEST(RsReduceTest, ReportsFlushedResident) {
  Partitioning p;
  std::vector<ChildPart> children = Parts({2, 2, 2});
  children[0].resident = 5;
  children[1].resident = 7;
  children[2].resident = 9;
  size_t flushed = 0;
  // own 4 + 6 = 10 > 6: cut (c2,c3) weight 4 -> residual 6.
  EXPECT_EQ(RsReduce(4, children, 6, &p, &flushed), 6u);
  EXPECT_EQ(flushed, 16u);  // residents of c2 and c3
}

TEST(KmReduceTest, CutsHeaviestFirst) {
  Partitioning p;
  const auto children = Parts({5, 9, 3});
  // own 2 + 17 = 19 > 10: cut 9 -> 10 <= 10, done.
  EXPECT_EQ(KmReduce(2, children, 10, &p), 10u);
  ASSERT_EQ(p.size(), 1u);
  EXPECT_EQ(p[0].first, 101u);
  EXPECT_EQ(p[0].last, 101u);
}

TEST(KmReduceTest, CutsSeveralInWeightOrder) {
  Partitioning p;
  const auto children = Parts({5, 9, 3});
  // K = 6: cut 9 (-> 10), cut 5 (-> 5 <= 6).
  EXPECT_EQ(KmReduce(2, children, 6, &p), 5u);
  ASSERT_EQ(p.size(), 2u);
  EXPECT_EQ(p[0].first, 101u);
  EXPECT_EQ(p[1].first, 100u);
}

TEST(KmReduceTest, SingletonIntervalsOnly) {
  Partitioning p;
  const auto children = Parts({4, 4, 4, 4});
  KmReduce(1, children, 4, &p);
  for (const SiblingInterval& iv : p) EXPECT_EQ(iv.first, iv.last);
}

TEST(GhdwReduceTest, OptimalChoiceOfJoinAndIntervals) {
  Partitioning p;
  // own 3 + {1, 2}, K = 4: lean optimum is the single interval (c1,c2).
  const auto children = Parts({1, 2});
  EXPECT_EQ(GhdwReduce(3, children, 4, &p), 3u);
  ASSERT_EQ(p.size(), 1u);
  EXPECT_EQ(p[0].first, 100u);
  EXPECT_EQ(p[0].last, 101u);
}

TEST(GhdwReduceTest, EmptyChildren) {
  Partitioning p;
  EXPECT_EQ(GhdwReduce(7, {}, 10, &p), 7u);
  EXPECT_TRUE(p.empty());
}

TEST(GhdwReduceTest, BeatsRsOnPacking) {
  // GHDW's DP packs strictly better than RS on an adversarial layout.
  const auto children = Parts({3, 3, 2, 3, 3});
  Partitioning p_rs;
  Partitioning p_ghdw;
  RsReduce(6, children, 6, &p_rs);
  GhdwReduce(6, children, 6, &p_ghdw);
  EXPECT_LE(p_ghdw.size(), p_rs.size());
}

TEST(GhdwReduceTest, StatsReported) {
  DpStats stats;
  Partitioning p;
  const auto children = Parts({2, 2, 2});
  GhdwReduce(1, children, 4, &p, nullptr, &stats);
  EXPECT_EQ(stats.inner_nodes, 1u);
  EXPECT_GT(stats.cells, 0u);
}

}  // namespace
}  // namespace natix
