// Unit coverage of the builtin-table canonical Huffman codec that backs
// compressed v3 record cells.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "storage/content_codec.h"

namespace natix {
namespace {

bool RoundTrip(const std::string& raw, std::string* back) {
  std::vector<uint8_t> enc;
  if (!ContentCodec::Compress(raw, &enc)) return false;
  EXPECT_LT(enc.size(), raw.size());
  EXPECT_TRUE(
      ContentCodec::Decompress(enc.data(), enc.size(), raw.size(), back));
  return true;
}

TEST(ContentCodecTest, EnglishTextRoundTripsSmaller) {
  const std::string raw =
      "The quick brown fox jumps over the lazy dog, and the open auction "
      "closes at a reserve price of 1250 dollars on 2024-03-01.";
  std::string back;
  ASSERT_TRUE(RoundTrip(raw, &back));
  EXPECT_EQ(back, raw);
}

TEST(ContentCodecTest, RandomTextRoundTrips) {
  Rng rng(31337);
  static constexpr const char* kWords[] = {"item", "bid", "the", "price",
                                           "seller", "open", "42", "&lt;"};
  for (int iter = 0; iter < 300; ++iter) {
    std::string raw;
    const size_t target = 1 + rng.NextBounded(400);
    while (raw.size() < target) {
      raw += kWords[rng.NextBounded(8)];
      raw += ' ';
    }
    std::string back;
    if (RoundTrip(raw, &back)) {
      EXPECT_EQ(back, raw) << iter;
    }
  }
}

TEST(ContentCodecTest, IncompressibleInputReportsFalse) {
  // High-entropy bytes: the English-biased table cannot shrink them, and
  // Compress must say so instead of emitting a larger "compressed" form.
  Rng rng(7);
  std::string raw;
  for (int i = 0; i < 256; ++i) {
    raw.push_back(static_cast<char>(rng.NextBounded(256)));
  }
  std::vector<uint8_t> enc;
  EXPECT_FALSE(ContentCodec::Compress(raw, &enc));
}

TEST(ContentCodecTest, EveryByteValueIsEncodable) {
  // The builtin table gives all 256 symbols a nonzero frequency, so any
  // byte is encodable (if not profitably); 'e'-padding makes the whole
  // input shrink so the round trip actually runs for each byte value.
  for (int b = 0; b < 256; ++b) {
    std::string raw(64, 'e');
    raw[20] = static_cast<char>(b);
    std::string back;
    ASSERT_TRUE(RoundTrip(raw, &back)) << b;
    EXPECT_EQ(back, raw) << b;
  }
}

TEST(ContentCodecTest, DeterministicAcrossCalls) {
  const std::string raw(100, 'a');
  std::vector<uint8_t> enc1, enc2;
  ASSERT_TRUE(ContentCodec::Compress(raw, &enc1));
  ASSERT_TRUE(ContentCodec::Compress(raw, &enc2));
  EXPECT_EQ(enc1, enc2);
}

TEST(ContentCodecTest, MaxCodeBitsFitsDecoderRegister) {
  // The canonical decoder accumulates the code in a uint32_t.
  EXPECT_GE(ContentCodec::MaxCodeBits(), 8u);
  EXPECT_LE(ContentCodec::MaxCodeBits(), 32u);
}

TEST(ContentCodecTest, DecompressRejectsDamagedFraming) {
  const std::string raw =
      "the quick brown fox jumps over the lazy dog again and again";
  std::vector<uint8_t> enc;
  ASSERT_TRUE(ContentCodec::Compress(raw, &enc));
  std::string back;
  // Truncated stream: ends mid-symbol or short of raw_len symbols.
  EXPECT_FALSE(
      ContentCodec::Decompress(enc.data(), enc.size() - 1, raw.size(), &back));
  // Stray trailing byte: the declared lengths leave a whole unread byte.
  std::vector<uint8_t> padded = enc;
  padded.push_back(0);
  EXPECT_FALSE(ContentCodec::Decompress(padded.data(), padded.size(),
                                        raw.size(), &back));
  // Empty stream cannot produce symbols.
  EXPECT_FALSE(ContentCodec::Decompress(enc.data(), 0, raw.size(), &back));
  // Wrong raw_len against the same bytes.
  EXPECT_FALSE(ContentCodec::Decompress(enc.data(), enc.size(),
                                        raw.size() + 40, &back));
}

TEST(ContentCodecTest, RandomCorruptionNeverMisdecodesSilently) {
  // A corrupt stream may still decode (complete code: every bit string
  // maps to symbols) but then it must differ from the original -- the
  // codec never returns true with the original text from damaged bytes.
  // Prefix codes are injective, so checking "accepted implies exact
  // length" is the decoder-side guarantee; content equality is the
  // record layer's corruption signal (see record_codec_test).
  // The final byte is excluded: its trailing padding bits sit past the
  // last symbol, so flipping only those is a semantic no-op that decodes
  // back to the original by design.
  Rng rng(555);
  const std::string raw =
      "auction item 17 with an initial price of 99 and a fixed reserve";
  std::vector<uint8_t> enc;
  ASSERT_TRUE(ContentCodec::Compress(raw, &enc));
  ASSERT_GT(enc.size(), 1u);
  for (int iter = 0; iter < 200; ++iter) {
    std::vector<uint8_t> bad = enc;
    bad[rng.NextBounded(static_cast<uint32_t>(bad.size() - 1))] ^=
        static_cast<uint8_t>(1 + rng.NextBounded(255));
    std::string back;
    if (ContentCodec::Decompress(bad.data(), bad.size(), raw.size(), &back)) {
      EXPECT_EQ(back.size(), raw.size());
      EXPECT_NE(back, raw) << iter;
    }
  }
}

}  // namespace
}  // namespace natix
