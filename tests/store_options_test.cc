// Store construction options and page-level accounting.
#include <gtest/gtest.h>

#include "core/heuristics.h"
#include "datagen/generator.h"
#include "storage/file_backend.h"
#include "storage/store.h"
#include "xml/importer.h"

namespace natix {
namespace {

struct Ctx {
  std::unique_ptr<ImportedDocument> doc;
};

Ctx Import(double scale = 0.03) {
  Ctx ctx;
  WeightModel model;
  model.max_node_slots = 128;
  Result<ImportedDocument> imp =
      ImportXml(GenerateSigmodRecord(8, scale), model);
  EXPECT_TRUE(imp.ok());
  ctx.doc = std::make_unique<ImportedDocument>(std::move(imp).value());
  return ctx;
}

TEST(StoreOptionsTest, SmallerPagesMorePages) {
  Ctx ctx = Import();
  const Result<Partitioning> p = EkmPartition(ctx.doc->tree, 128);
  ASSERT_TRUE(p.ok());
  StoreOptions small;
  small.page_size = 4096;
  StoreOptions large;
  large.page_size = 16384;
  const Result<NatixStore> s_small =
      NatixStore::Build(ctx.doc->Clone(), *p, 128, small);
  const Result<NatixStore> s_large =
      NatixStore::Build(ctx.doc->Clone(), *p, 128, large);
  ASSERT_TRUE(s_small.ok() && s_large.ok());
  EXPECT_GT(s_small->page_count(), s_large->page_count());
  // Payload is identical; only the packaging differs.
  EXPECT_EQ(s_small->payload_bytes(), s_large->payload_bytes());
}

TEST(StoreOptionsTest, LookbackImprovesUtilization) {
  Ctx ctx = Import(0.05);
  const Result<Partitioning> p = EkmPartition(ctx.doc->tree, 128);
  ASSERT_TRUE(p.ok());
  StoreOptions no_lookback;
  no_lookback.allocation_lookback = 1;
  StoreOptions deep_lookback;
  deep_lookback.allocation_lookback = 64;
  const Result<NatixStore> s1 =
      NatixStore::Build(ctx.doc->Clone(), *p, 128, no_lookback);
  const Result<NatixStore> s64 =
      NatixStore::Build(ctx.doc->Clone(), *p, 128, deep_lookback);
  ASSERT_TRUE(s1.ok() && s64.ok());
  EXPECT_GE(s64->PageUtilization(), s1->PageUtilization());
  EXPECT_LE(s64->page_count(), s1->page_count());
}

TEST(StoreOptionsTest, PageSwitchesAtMostCrossings) {
  Ctx ctx = Import();
  const Result<Partitioning> p = KmPartition(ctx.doc->tree, 128);
  ASSERT_TRUE(p.ok());
  const Result<NatixStore> store = NatixStore::Build(ctx.doc->Clone(), *p, 128);
  ASSERT_TRUE(store.ok());
  AccessStats stats;
  Navigator nav(&*store, &stats);
  // Wander around.
  for (int i = 0; i < 200; ++i) {
    if (!nav.ToFirstChild() && !nav.ToNextSibling() && !nav.ToParent()) {
      break;
    }
  }
  EXPECT_LE(stats.page_switches, stats.record_crossings);
}

TEST(StoreOptionsTest, SamePageCrossingIsNotAPageSwitch) {
  // Two partitions small enough to share one page: crossing between them
  // must not count as a page switch.
  WeightModel model;
  Result<ImportedDocument> imp = ImportXml("<a><b/><c/></a>", model);
  ASSERT_TRUE(imp.ok());
  const ImportedDocument doc = std::move(imp).value();
  Partitioning p;
  p.Add(0, 0);
  p.Add(1, 2);
  const Result<NatixStore> store = NatixStore::Build(doc.Clone(), p, 100);
  ASSERT_TRUE(store.ok());
  ASSERT_EQ(store->page_count(), 1u);
  AccessStats stats;
  Navigator nav(&*store, &stats);
  nav.ToFirstChild();  // crossing, same page
  EXPECT_EQ(stats.record_crossings, 1u);
  EXPECT_EQ(stats.page_switches, 0u);
}

TEST(StoreOptionsTest, RecordFormatSelectsEncodingAndShrinksV3) {
  Ctx ctx = Import(0.05);
  const Result<Partitioning> p = EkmPartition(ctx.doc->tree, 128);
  ASSERT_TRUE(p.ok());
  StoreOptions v2;
  v2.record_format = kRecordFormatV2;
  StoreOptions v3;
  v3.record_format = kRecordFormatV3;
  const Result<NatixStore> s2 =
      NatixStore::Build(ctx.doc->Clone(), *p, 128, v2);
  const Result<NatixStore> s3 =
      NatixStore::Build(ctx.doc->Clone(), *p, 128, v3);
  ASSERT_TRUE(s2.ok() && s3.ok());
  EXPECT_EQ(s2->record_format(), kRecordFormatV2);
  EXPECT_EQ(s3->record_format(), kRecordFormatV3);
  // Same partitioning, same logical document; compressed records take
  // strictly fewer payload bytes on English-heavy corpus text.
  EXPECT_EQ(s2->record_count(), s3->record_count());
  EXPECT_LT(s3->payload_bytes(), s2->payload_bytes());
  // The logical view is identical node for node.
  const Tree& t2 = s2->tree();
  for (NodeId v = 0; v < t2.size(); ++v) {
    ASSERT_EQ(s2->document().ContentOf(v), s3->document().ContentOf(v))
        << "node " << v;
  }
}

TEST(StoreOptionsTest, RecoveryPreservesRecordFormat) {
  // A store checkpointed with v2 records must keep writing v2 after
  // recovery -- the format is per store, not per binary.
  for (const uint16_t format : {kRecordFormatV2, kRecordFormatV3}) {
    Ctx ctx = Import();
    const Result<Partitioning> p = EkmPartition(ctx.doc->tree, 128);
    ASSERT_TRUE(p.ok());
    StoreOptions opts;
    opts.record_format = format;
    Result<NatixStore> store =
        NatixStore::Build(ctx.doc->Clone(), *p, 128, opts);
    ASSERT_TRUE(store.ok());
    auto mem = std::make_unique<MemoryFileBackend>();
    const std::shared_ptr<MemoryFileBackend::Bytes> disk = mem->disk();
    ASSERT_TRUE(store->EnableDurability(std::move(mem)).ok());
    ASSERT_TRUE(store->Checkpoint().ok());

    const Result<NatixStore> recovered =
        NatixStore::Recover(std::make_unique<MemoryFileBackend>(disk));
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
    EXPECT_EQ(recovered->record_format(), format);
    const Tree& t = store->tree();
    ASSERT_EQ(recovered->tree().size(), t.size());
    for (NodeId v = 0; v < t.size(); ++v) {
      ASSERT_EQ(recovered->document().ContentOf(v),
                store->document().ContentOf(v))
          << "format " << format << " node " << v;
    }
  }
}

TEST(StoreOptionsTest, DiskBytesAreWholePages) {
  Ctx ctx = Import();
  const Result<Partitioning> p = EkmPartition(ctx.doc->tree, 128);
  ASSERT_TRUE(p.ok());
  StoreOptions opts;
  opts.page_size = 8192;
  const Result<NatixStore> store =
      NatixStore::Build(ctx.doc->Clone(), *p, 128, opts);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ(store->TotalDiskBytes() % 8192, 0u);
  EXPECT_GE(store->TotalDiskBytes(),
            store->payload_bytes());
}

}  // namespace
}  // namespace natix
