#include "tree/tree.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace natix {
namespace {

using testing_util::Fig3Tree;

TEST(TreeTest, EmptyTree) {
  Tree t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.root(), kInvalidNode);
  EXPECT_EQ(t.TotalTreeWeight(), 0u);
  EXPECT_EQ(t.MaxNodeWeight(), 0u);
  EXPECT_TRUE(t.Validate().ok());
}

TEST(TreeTest, SingleNode) {
  Tree t;
  const NodeId r = t.AddRoot(7, "root");
  EXPECT_EQ(r, 0u);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.root(), r);
  EXPECT_EQ(t.Parent(r), kInvalidNode);
  EXPECT_EQ(t.FirstChild(r), kInvalidNode);
  EXPECT_EQ(t.WeightOf(r), 7u);
  EXPECT_EQ(t.LabelOf(r), "root");
  EXPECT_EQ(t.ChildCount(r), 0u);
  EXPECT_EQ(t.Height(), 0);
  EXPECT_TRUE(t.Validate().ok());
}

TEST(TreeTest, SiblingLinks) {
  Tree t;
  const NodeId r = t.AddRoot(1);
  const NodeId a = t.AppendChild(r, 1, "a");
  const NodeId b = t.AppendChild(r, 2, "b");
  const NodeId c = t.AppendChild(r, 3, "c");
  EXPECT_EQ(t.FirstChild(r), a);
  EXPECT_EQ(t.LastChild(r), c);
  EXPECT_EQ(t.NextSibling(a), b);
  EXPECT_EQ(t.NextSibling(b), c);
  EXPECT_EQ(t.NextSibling(c), kInvalidNode);
  EXPECT_EQ(t.PrevSibling(c), b);
  EXPECT_EQ(t.PrevSibling(b), a);
  EXPECT_EQ(t.PrevSibling(a), kInvalidNode);
  EXPECT_EQ(t.ChildCount(r), 3u);
  EXPECT_EQ(t.Children(r), (std::vector<NodeId>{a, b, c}));
  EXPECT_TRUE(t.Validate().ok());
}

TEST(TreeTest, Fig3Structure) {
  const Tree t = Fig3Tree();
  ASSERT_EQ(t.size(), 8u);
  EXPECT_EQ(t.LabelOf(t.root()), "a");
  EXPECT_EQ(t.WeightOf(t.root()), 3u);
  const std::vector<NodeId> kids = t.Children(t.root());
  ASSERT_EQ(kids.size(), 5u);
  EXPECT_EQ(t.LabelOf(kids[0]), "b");
  EXPECT_EQ(t.LabelOf(kids[1]), "c");
  EXPECT_EQ(t.LabelOf(kids[4]), "h");
  EXPECT_EQ(t.ChildCount(kids[1]), 2u);
  EXPECT_EQ(t.TotalTreeWeight(), 14u);
  EXPECT_EQ(t.Height(), 2);
}

TEST(TreeTest, SubtreeWeightsMatchPaper) {
  // Sec 2.1: "c's subtree weight W_T(c) is 5."
  const Tree t = Fig3Tree();
  const std::vector<TotalWeight> w = t.SubtreeWeights();
  const NodeId c = t.Children(t.root())[1];
  EXPECT_EQ(w[c], 5u);
  EXPECT_EQ(w[t.root()], 14u);
  // Leaves have subtree weight == own weight.
  const NodeId b = t.Children(t.root())[0];
  EXPECT_EQ(w[b], 2u);
}

TEST(TreeTest, PreorderAndPostorder) {
  const Tree t = Fig3Tree();
  std::vector<std::string> pre;
  for (const NodeId v : t.PreorderNodes()) pre.emplace_back(t.LabelOf(v));
  EXPECT_EQ(pre, (std::vector<std::string>{"a", "b", "c", "d", "e", "f", "g",
                                           "h"}));
  std::vector<std::string> post;
  for (const NodeId v : t.PostorderNodes()) post.emplace_back(t.LabelOf(v));
  EXPECT_EQ(post, (std::vector<std::string>{"b", "d", "e", "c", "f", "g", "h",
                                            "a"}));
}

TEST(TreeTest, PreorderRanks) {
  const Tree t = Fig3Tree();
  const std::vector<uint32_t> ranks = t.PreorderRanks();
  const std::vector<NodeId> pre = t.PreorderNodes();
  for (uint32_t i = 0; i < pre.size(); ++i) EXPECT_EQ(ranks[pre[i]], i);
}

TEST(TreeTest, DepthAndAncestors) {
  const Tree t = Fig3Tree();
  const NodeId c = t.Children(t.root())[1];
  const NodeId d = t.Children(c)[0];
  EXPECT_EQ(t.Depth(t.root()), 0);
  EXPECT_EQ(t.Depth(c), 1);
  EXPECT_EQ(t.Depth(d), 2);
  EXPECT_TRUE(t.IsAncestorOrSelf(t.root(), d));
  EXPECT_TRUE(t.IsAncestorOrSelf(c, d));
  EXPECT_TRUE(t.IsAncestorOrSelf(d, d));
  EXPECT_FALSE(t.IsAncestorOrSelf(d, c));
}

TEST(TreeTest, LabelInterning) {
  Tree t;
  const NodeId r = t.AddRoot(1, "x");
  const NodeId a = t.AppendChild(r, 1, "y");
  const NodeId b = t.AppendChild(r, 1, "x");
  EXPECT_EQ(t.LabelIdOf(r), t.LabelIdOf(b));
  EXPECT_NE(t.LabelIdOf(r), t.LabelIdOf(a));
  EXPECT_EQ(t.LabelCount(), 2u);
  EXPECT_EQ(t.FindLabelId("x"), t.LabelIdOf(r));
  EXPECT_EQ(t.FindLabelId("missing"), -1);
}

TEST(TreeTest, UnlabeledNodes) {
  Tree t;
  const NodeId r = t.AddRoot(2);
  EXPECT_EQ(t.LabelOf(r), "");
  EXPECT_EQ(t.LabelIdOf(r), -1);
}

TEST(TreeTest, NodeKinds) {
  Tree t;
  const NodeId r = t.AddRoot(1, "e", NodeKind::kElement);
  const NodeId txt = t.AppendChild(r, 3, "", NodeKind::kText);
  const NodeId attr = t.AppendChild(r, 2, "id", NodeKind::kAttribute);
  EXPECT_EQ(t.KindOf(r), NodeKind::kElement);
  EXPECT_EQ(t.KindOf(txt), NodeKind::kText);
  EXPECT_EQ(t.KindOf(attr), NodeKind::kAttribute);
}

TEST(TreeTest, Clone) {
  const Tree t = Fig3Tree();
  const Tree copy = t.Clone();
  EXPECT_EQ(copy.size(), t.size());
  EXPECT_EQ(TreeToSpec(copy), TreeToSpec(t));
}

TEST(TreeTest, MaxNodeWeight) {
  const Tree t = Fig3Tree();
  EXPECT_EQ(t.MaxNodeWeight(), 3u);
}

TEST(TreeTest, DeepChainTraversalsDoNotOverflow) {
  // 200k-deep path; traversals must be iterative.
  Tree t;
  NodeId v = t.AddRoot(1);
  for (int i = 0; i < 200000; ++i) v = t.AppendChild(v, 1);
  EXPECT_EQ(t.PreorderNodes().size(), t.size());
  EXPECT_EQ(t.PostorderNodes().size(), t.size());
  EXPECT_EQ(t.Height(), 200000);
  EXPECT_EQ(t.SubtreeWeights()[t.root()], t.size());
}

TEST(TreeTest, SetWeight) {
  Tree t;
  const NodeId r = t.AddRoot(5);
  t.SetWeight(r, 9);
  EXPECT_EQ(t.WeightOf(r), 9u);
}

TEST(TreeTest, RandomTreesValidate) {
  Rng rng(42);
  for (int i = 0; i < 50; ++i) {
    const Tree t = testing_util::RandomTree(rng, 200, 10);
    EXPECT_TRUE(t.Validate().ok());
    EXPECT_EQ(t.size(), 200u);
    // Subtree weight of the root equals the total weight.
    EXPECT_EQ(t.SubtreeWeights()[t.root()], t.TotalTreeWeight());
  }
}

}  // namespace
}  // namespace natix
