// Storage integrity layer: sealed page cells, verified reads, the fsck
// offline checker and self-healing repair. The centrepiece is the
// corruption matrix: bit flips and zeroed sectors at strided offsets
// over a flushed page file, where fsck must detect every injected fault
// (no silent successes) and repair must restore byte- and query-level
// equivalence with an undamaged oracle.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/heuristics.h"
#include "datagen/generator.h"
#include "query/evaluator.h"
#include "query/parser.h"
#include "query/xpathmark.h"
#include "storage/buffer_manager.h"
#include "storage/fault_injector.h"
#include "storage/file_backend.h"
#include "storage/fsck.h"
#include "storage/page_integrity.h"
#include "storage/self_heal.h"
#include "storage/store.h"
#include "storage/wal.h"
#include "xml/importer.h"

namespace natix {
namespace {

// ------------------------------------------------- sealed page cells ----

TEST(PageCellTest, SealRoundTrips) {
  const std::vector<uint8_t> payload = {1, 2, 3, 4, 250, 0, 9};
  const std::vector<uint8_t> cell =
      SealPageCell(/*epoch=*/7, payload.data(), payload.size());
  ASSERT_EQ(cell.size(), payload.size() + kPageCellOverhead);
  uint32_t epoch = 0;
  EXPECT_EQ(ClassifyPageCell(cell.data(), cell.size(), &epoch),
            PageDamage::kNone);
  EXPECT_EQ(epoch, 7u);
  const Result<std::vector<uint8_t>> open =
      OpenPageCell(cell.data(), cell.size());
  ASSERT_TRUE(open.ok()) << open.status().ToString();
  EXPECT_EQ(*open, payload);
}

TEST(PageCellTest, ClassifiesTornVersusRot) {
  const std::vector<uint8_t> payload(64, 0xAB);
  const std::vector<uint8_t> old_cell =
      SealPageCell(3, payload.data(), payload.size());
  const std::vector<uint8_t> new_cell =
      SealPageCell(4, payload.data(), payload.size());

  // Half-old/half-new: the head of the new write over the tail of the
  // old one. The epochs disagree, so this is torn, not rot.
  std::vector<uint8_t> torn = old_cell;
  std::memcpy(torn.data(), new_cell.data(), torn.size() / 2);
  EXPECT_EQ(ClassifyPageCell(torn.data(), torn.size()), PageDamage::kTorn);
  EXPECT_FALSE(OpenPageCell(torn.data(), torn.size()).ok());

  // A flipped payload bit keeps the epochs equal: rot.
  std::vector<uint8_t> rotten = old_cell;
  rotten[10] ^= 0x04;
  EXPECT_EQ(ClassifyPageCell(rotten.data(), rotten.size()),
            PageDamage::kChecksum);

  // A zeroed run in the payload keeps the epochs equal: rot.
  std::vector<uint8_t> zeroed = old_cell;
  std::fill(zeroed.begin() + 20, zeroed.begin() + 40, 0);
  EXPECT_EQ(ClassifyPageCell(zeroed.data(), zeroed.size()),
            PageDamage::kChecksum);

  // A zeroed run spanning the tail stamp wipes the tail epoch -- that is
  // indistinguishable from a write whose tail never landed, so it
  // classifies as torn, not rot.
  std::vector<uint8_t> tailless = old_cell;
  std::fill(tailless.end() - 16, tailless.end(), 0);
  EXPECT_EQ(ClassifyPageCell(tailless.data(), tailless.size()),
            PageDamage::kTorn);

  // Bad magic and runt cells are never classified as torn.
  std::vector<uint8_t> alien = old_cell;
  alien[0] ^= 0xFF;
  EXPECT_EQ(ClassifyPageCell(alien.data(), alien.size()),
            PageDamage::kChecksum);
  EXPECT_EQ(ClassifyPageCell(old_cell.data(), kPageCellOverhead - 1),
            PageDamage::kChecksum);
}

// ------------------------------------------------- shared fixtures ------

constexpr TotalWeight kLimit = 64;
constexpr uint64_t kSeed = 20260805;
constexpr int kInserts = 300;
constexpr int kCheckpointEvery = 100;

NatixStore MakeStore() {
  WeightModel model;
  model.max_node_slots = static_cast<uint32_t>(kLimit);
  Result<ImportedDocument> imp = ImportXml(GenerateXmark(5, 0.003), model);
  EXPECT_TRUE(imp.ok()) << imp.status().ToString();
  Result<Partitioning> p = EkmPartition(imp->tree, kLimit);
  EXPECT_TRUE(p.ok());
  Result<NatixStore> store =
      NatixStore::Build(std::move(imp).value(), *p, kLimit);
  EXPECT_TRUE(store.ok()) << store.status().ToString();
  return std::move(store).value();
}

Status ScriptedInsert(NatixStore* store, Rng* rng) {
  static constexpr const char* kLabels[] = {"item", "note", "entry", "x"};
  const Tree& t = store->tree();
  const NodeId parent = static_cast<NodeId>(rng->NextBounded(t.size()));
  NodeId before = kInvalidNode;
  if (t.ChildCount(parent) > 0 && rng->NextBool(0.4)) {
    const std::vector<NodeId> kids = t.Children(parent);
    before = kids[rng->NextBounded(kids.size())];
  }
  const bool text = rng->NextBool(0.5);
  std::string content;
  if (text) {
    content.assign(1 + rng->NextBounded(40),
                   static_cast<char>('a' + rng->NextBounded(26)));
  }
  return store
      ->InsertBefore(parent, before,
                     text ? "" : kLabels[rng->NextBounded(4)],
                     text ? NodeKind::kText : NodeKind::kElement, content)
      .status();
}

/// A mutated, checkpointed, durable store plus the WAL bytes and a
/// flushed sealed-cell page file. The live store doubles as the
/// undamaged oracle for every check below.
struct DurableFixture {
  NatixStore store;
  std::shared_ptr<MemoryFileBackend::Bytes> wal_disk;
  MemoryFileBackend::Bytes pristine_pages;

  static DurableFixture Make() {
    DurableFixture f{MakeStore(), nullptr, {}};
    auto mem = std::make_unique<MemoryFileBackend>();
    f.wal_disk = mem->disk();
    EXPECT_TRUE(f.store.EnableDurability(std::move(mem)).ok());
    Rng rng(kSeed);
    for (int i = 0; i < kInserts; ++i) {
      EXPECT_TRUE(ScriptedInsert(&f.store, &rng).ok()) << i;
      if ((i + 1) % kCheckpointEvery == 0) {
        EXPECT_TRUE(f.store.Checkpoint().ok());
      }
    }
    EXPECT_TRUE(f.store.Checkpoint().ok());
    MemoryFileBackend pagefile;
    EXPECT_TRUE(f.store.FlushPagesTo(&pagefile).ok());
    f.pristine_pages = *pagefile.disk();
    return f;
  }
};

// --------------------------------------------- verified page source -----

TEST(FilePageSourceTest, ServesVerifiedCells) {
  DurableFixture f = DurableFixture::Make();
  MemoryFileBackend pagefile(
      std::make_shared<MemoryFileBackend::Bytes>(f.pristine_pages));
  const FilePageSource source(&pagefile, f.store.page_size(),
                              f.store.page_provider());
  ASSERT_GT(f.store.regular_page_count(), 1u);
  for (uint32_t p = 0; p < f.store.regular_page_count(); ++p) {
    const Result<std::vector<uint8_t>> got = source.ReadPage(p);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    const Result<std::vector<uint8_t>> want =
        f.store.page_provider()->ReadPage(p);
    ASSERT_TRUE(want.ok());
    EXPECT_EQ(*got, *want) << "page " << p;
  }
  EXPECT_EQ(source.stats().pages_read, f.store.regular_page_count());
  EXPECT_EQ(source.stats().checksum_failures, 0u);
  EXPECT_EQ(source.stats().torn_pages, 0u);
}

TEST(FilePageSourceTest, RetriesTransientUnavailableReads) {
  DurableFixture f = DurableFixture::Make();
  auto mem = std::make_unique<MemoryFileBackend>(
      std::make_shared<MemoryFileBackend::Bytes>(f.pristine_pages));
  FaultInjectingBackend flaky(std::move(mem), /*fault_at=*/1ull << 40,
                              FaultMode::kFailStop);
  flaky.ArmReadFault(ReadFaultMode::kTransientEio, /*fault_at=*/0,
                     /*count=*/2);
  const FilePageSource source(&flaky, f.store.page_size(),
                              f.store.page_provider());
  const Result<std::vector<uint8_t>> got = source.ReadPage(0);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(*got, *f.store.page_provider()->ReadPage(0));
  EXPECT_EQ(source.stats().transient_retries, 2u);
  EXPECT_EQ(flaky.read_faults_fired(), 2u);
}

TEST(FilePageSourceTest, ReportsBitFlipAsChecksumDamage) {
  DurableFixture f = DurableFixture::Make();
  auto mem = std::make_unique<MemoryFileBackend>(
      std::make_shared<MemoryFileBackend::Bytes>(f.pristine_pages));
  FaultInjectingBackend flaky(std::move(mem), /*fault_at=*/1ull << 40,
                              FaultMode::kFailStop);
  flaky.ArmReadFault(ReadFaultMode::kBitFlip, /*fault_at=*/0);
  const FilePageSource source(&flaky, f.store.page_size(),
                              f.store.page_provider());
  const Result<std::vector<uint8_t>> got = source.ReadPage(0);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(source.stats().checksum_failures, 1u);
  // The device reads clean outside the fault window; the same source
  // serves the page on the next attempt (what self-healing relies on).
  EXPECT_TRUE(source.ReadPage(0).ok());
}

// -------------------------------------------------- self-healing --------

TEST(SelfHealTest, RepairsRotFromTheWal) {
  DurableFixture f = DurableFixture::Make();
  MemoryFileBackend pagefile(
      std::make_shared<MemoryFileBackend::Bytes>(f.pristine_pages));
  // Flip a payload byte in every cell: every page is damaged.
  const size_t cell_size = f.store.page_size() + kPageCellOverhead;
  for (uint32_t p = 0; p < f.store.regular_page_count(); ++p) {
    (*pagefile.disk())[p * cell_size + 100] ^= 0x20;
  }
  FilePageSource primary(&pagefile, f.store.page_size(),
                         f.store.page_provider());
  MemoryFileBackend wal(f.wal_disk);
  Result<LruBufferPool> pool = LruBufferPool::Create(4);
  ASSERT_TRUE(pool.ok());
  // Make a frame resident so the quarantine step has something to drop.
  ASSERT_TRUE(pool->Pin(0, f.store.page_provider()).ok());
  pool->Unpin(0);
  const SelfHealingPageSource healer(&primary, &wal, &*pool);
  for (uint32_t p = 0; p < f.store.regular_page_count(); ++p) {
    const Result<std::vector<uint8_t>> got = healer.ReadPage(p);
    ASSERT_TRUE(got.ok()) << "page " << p << ": " << got.status().ToString();
    EXPECT_EQ(*got, *f.store.page_provider()->ReadPage(p)) << "page " << p;
  }
  const IntegrityStats stats = healer.stats();
  EXPECT_EQ(stats.repairs, f.store.regular_page_count());
  EXPECT_EQ(stats.repair_failures, 0u);
  EXPECT_EQ(stats.checksum_failures, f.store.regular_page_count());
  EXPECT_EQ(stats.quarantines, 1u);
  EXPECT_EQ(pool->stats().quarantines, 1u);
  // The rewritten cells are durable: a fresh, non-healing source now
  // verifies every page without help.
  const FilePageSource reread(&pagefile, f.store.page_size(),
                              f.store.page_provider());
  for (uint32_t p = 0; p < f.store.regular_page_count(); ++p) {
    EXPECT_TRUE(reread.ReadPage(p).ok()) << "page " << p;
  }
}

TEST(SelfHealTest, FailsLoudlyWithoutACleanSource) {
  DurableFixture f = DurableFixture::Make();
  MemoryFileBackend pagefile(
      std::make_shared<MemoryFileBackend::Bytes>(f.pristine_pages));
  (*pagefile.disk())[50] ^= 0xFF;
  FilePageSource primary(&pagefile, f.store.page_size(),
                         f.store.page_provider());
  const SelfHealingPageSource healer(&primary, /*wal=*/nullptr);
  const Result<std::vector<uint8_t>> got = healer.ReadPage(0);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kInternal);
  EXPECT_NE(got.status().message().find("unrecoverable"), std::string::npos)
      << got.status().ToString();
  EXPECT_EQ(healer.stats().repair_failures, 1u);
  EXPECT_EQ(healer.stats().repairs, 0u);
}

TEST(SelfHealTest, PassesThroughPersistentUnavailability) {
  DurableFixture f = DurableFixture::Make();
  auto mem = std::make_unique<MemoryFileBackend>(
      std::make_shared<MemoryFileBackend::Bytes>(f.pristine_pages));
  FaultInjectingBackend flaky(std::move(mem), /*fault_at=*/1ull << 40,
                              FaultMode::kFailStop);
  // More consecutive failures than the page source's retry budget: the
  // read must surface Unavailable, not trigger a (pointless) repair.
  flaky.ArmReadFault(ReadFaultMode::kTransientEio, /*fault_at=*/0,
                     /*count=*/64);
  FilePageSource primary(&flaky, f.store.page_size(),
                         f.store.page_provider());
  MemoryFileBackend wal(f.wal_disk);
  const SelfHealingPageSource healer(&primary, &wal);
  const Result<std::vector<uint8_t>> got = healer.ReadPage(0);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(healer.stats().repairs, 0u);
  EXPECT_EQ(healer.stats().repair_failures, 0u);
}

// ------------------------------------------------------- fsck -----------

TEST(FsckTest, CleanStoreAuditsClean) {
  DurableFixture f = DurableFixture::Make();
  MemoryFileBackend wal(f.wal_disk);
  MemoryFileBackend pagefile(
      std::make_shared<MemoryFileBackend::Bytes>(f.pristine_pages));
  std::unique_ptr<NatixStore> audited;
  Result<FsckReport> report = FsckLog(&wal, &audited);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_NE(audited, nullptr);
  ASSERT_TRUE(FsckPageFile(&pagefile, *audited, &*report).ok());
  EXPECT_TRUE(report->clean()) << report->Summary();
  EXPECT_TRUE(report->store_recovered);
  EXPECT_FALSE(report->tail_torn);
  EXPECT_GE(report->complete_checkpoints, 4u);
  EXPECT_EQ(report->nodes_checked, f.store.node_count());
  EXPECT_EQ(report->page_cells_checked, f.store.regular_page_count());
  EXPECT_EQ(report->cell_content_mismatches, 0u);
  // The audit is genuinely read-only.
  EXPECT_EQ(*wal.disk(), *MemoryFileBackend(f.wal_disk).disk());
}

TEST(FsckTest, ReportsTornTailWithoutTruncating) {
  DurableFixture f = DurableFixture::Make();
  auto damaged =
      std::make_shared<MemoryFileBackend::Bytes>(*f.wal_disk);
  const MemoryFileBackend::Bytes garbage = {'g', 'a', 'r', 'b'};
  damaged->insert(damaged->end(), garbage.begin(), garbage.end());
  MemoryFileBackend wal(damaged);
  const Result<FsckReport> report = FsckLog(&wal);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->tail_torn);
  EXPECT_EQ(report->torn_bytes, garbage.size());
  // A torn tail is crash damage recovery handles, not integrity damage.
  EXPECT_TRUE(report->clean()) << report->Summary();
  EXPECT_EQ(damaged->size(), f.wal_disk->size() + garbage.size());
}

TEST(FsckTest, FlagsALogWithoutACompleteCheckpoint) {
  MemoryFileBackend wal;
  Result<std::unique_ptr<WalWriter>> writer =
      WalWriter::Create(&wal, SyncPolicy::OnCheckpoint());
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Append(WalEntryType::kCheckpointBegin, {}).ok());
  const Result<FsckReport> report = FsckLog(&wal);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->clean());
  EXPECT_FALSE(report->store_recovered);
  EXPECT_TRUE(report->incomplete_checkpoint_tail);
  EXPECT_GE(report->log_structure_errors, 1u);
}

// -------------------------------------------- the corruption matrix -----

/// Runs fsck (log + page file) over `pages` and returns the report.
FsckReport AuditPages(const DurableFixture& f,
                      const MemoryFileBackend::Bytes& pages) {
  MemoryFileBackend wal(f.wal_disk);
  MemoryFileBackend pagefile(
      std::make_shared<MemoryFileBackend::Bytes>(pages));
  std::unique_ptr<NatixStore> audited;
  Result<FsckReport> report = FsckLog(&wal, &audited);
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_NE(audited, nullptr);
  EXPECT_TRUE(FsckPageFile(&pagefile, *audited, &*report).ok());
  return *report;
}

/// Heals every regular page of `pages` in place and checks byte
/// equivalence with the oracle's authoritative images.
void ExpectHealsCompletely(const DurableFixture& f,
                           MemoryFileBackend* pagefile,
                           const std::string& context) {
  FilePageSource primary(pagefile, f.store.page_size(),
                         f.store.page_provider());
  MemoryFileBackend wal(f.wal_disk);
  const SelfHealingPageSource healer(&primary, &wal);
  for (uint32_t p = 0; p < f.store.regular_page_count(); ++p) {
    const Result<std::vector<uint8_t>> got = healer.ReadPage(p);
    ASSERT_TRUE(got.ok()) << context << " page " << p << ": "
                          << got.status().ToString();
    ASSERT_EQ(*got, *f.store.page_provider()->ReadPage(p))
        << context << " page " << p;
  }
  EXPECT_EQ(healer.stats().repair_failures, 0u) << context;
}

TEST(CorruptionMatrixTest, FsckDetectsAndRepairHealsEveryFault) {
  const DurableFixture f = DurableFixture::Make();
  const size_t file_size = f.pristine_pages.size();
  ASSERT_GT(file_size, 0u);
  // Strides chosen to land faults in cell heads, payload bodies and tail
  // stamps across different pages.
  const size_t flip_stride = file_size / 23 + 1;
  constexpr size_t kSectorSize = 64;
  const size_t sector_stride = file_size / 11 + 1;

  size_t cases = 0;
  // --- single bit flips ---
  for (size_t off = 0; off < file_size; off += flip_stride) {
    MemoryFileBackend::Bytes damaged = f.pristine_pages;
    damaged[off] ^= 1u << (off % 8);
    const FsckReport report = AuditPages(f, damaged);
    ASSERT_GT(report.damage_count(), 0u)
        << "SILENT SUCCESS: bit flip at offset " << off
        << " went undetected\n" << report.Summary();
    MemoryFileBackend pagefile(
        std::make_shared<MemoryFileBackend::Bytes>(damaged));
    ExpectHealsCompletely(f, &pagefile,
                          "bit flip at " + std::to_string(off));
    ++cases;
  }
  // --- zeroed sectors ---
  for (size_t off = 0; off < file_size; off += sector_stride) {
    MemoryFileBackend::Bytes damaged = f.pristine_pages;
    const size_t end = std::min(off + kSectorSize, file_size);
    std::fill(damaged.begin() + off, damaged.begin() + end, 0);
    if (damaged == f.pristine_pages) continue;  // sector was already zero
    const FsckReport report = AuditPages(f, damaged);
    ASSERT_GT(report.damage_count(), 0u)
        << "SILENT SUCCESS: zeroed sector at offset " << off
        << " went undetected\n" << report.Summary();
    MemoryFileBackend pagefile(
        std::make_shared<MemoryFileBackend::Bytes>(damaged));
    ExpectHealsCompletely(f, &pagefile,
                          "zeroed sector at " + std::to_string(off));
    ++cases;
  }
  ASSERT_GE(cases, 20u) << "the matrix shrank; widen the strides";
}

TEST(CorruptionMatrixTest, HealedFileAnswersQueriesLikeTheOracle) {
  const DurableFixture f = DurableFixture::Make();
  // Damage a run of bytes in the middle of the file, then evaluate the
  // full XPathMark suite reading *through* the healing source.
  MemoryFileBackend pagefile(
      std::make_shared<MemoryFileBackend::Bytes>(f.pristine_pages));
  const size_t mid = pagefile.disk()->size() / 2;
  for (size_t i = 0; i < 200; ++i) (*pagefile.disk())[mid + i] ^= 0x55;
  FilePageSource primary(&pagefile, f.store.page_size(),
                         f.store.page_provider());
  MemoryFileBackend wal(f.wal_disk);
  const SelfHealingPageSource healer(&primary, &wal);
  Result<LruBufferPool> pool = LruBufferPool::Create(2);
  ASSERT_TRUE(pool.ok());
  AccessStats hstats, ostats;
  StoreQueryEvaluator healed(&f.store, &hstats, &*pool, &healer);
  StoreQueryEvaluator oracle(&f.store, &ostats);
  for (const XPathMarkQuery& q : XPathMarkQueries()) {
    const Result<PathExpr> path = ParseXPath(q.text);
    ASSERT_TRUE(path.ok()) << q.id;
    const Result<std::vector<NodeId>> got = healed.Evaluate(*path);
    const Result<std::vector<NodeId>> want = oracle.Evaluate(*path);
    ASSERT_TRUE(got.ok()) << q.id << ": " << got.status().ToString();
    ASSERT_TRUE(want.ok()) << q.id;
    ASSERT_EQ(*got, *want) << q.id;
  }
  EXPECT_GT(healer.stats().repairs, 0u);
  EXPECT_EQ(healer.stats().repair_failures, 0u);
}

// ------------------------------------------------- recovery info --------

TEST(RecoveryInfoTest, ReportsLsnRangeAndTornTail) {
  DurableFixture f = DurableFixture::Make();
  // A few more inserts after the last checkpoint give recovery an op
  // tail to replay, then a torn append loses its final bytes.
  Rng rng(kSeed + 1);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(ScriptedInsert(&f.store, &rng).ok());
  }
  // Drain the group-commit buffer before measuring: otherwise the
  // flusher would append the tail ops after the garbage below.
  ASSERT_TRUE(f.store.SyncWal().ok());
  const uint64_t intact_size = f.wal_disk->size();
  f.wal_disk->resize(intact_size + 7, 0xEE);
  RecoveryInfo info;
  Result<NatixStore> recovered = NatixStore::Recover(
      std::make_unique<MemoryFileBackend>(f.wal_disk), &info);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_TRUE(info.tail_was_torn);
  EXPECT_EQ(info.torn_bytes, 7u);
  EXPECT_EQ(f.wal_disk->size(), intact_size);  // tail truncated
  EXPECT_EQ(info.replayed_ops, 5u);
  EXPECT_GT(info.checkpoint_begin_lsn, 0u);
  EXPECT_EQ(info.checkpoint_end_lsn, info.last_lsn - info.replayed_ops);
  EXPECT_GE(info.checkpoints_found, 4u);
  EXPECT_GT(info.entries_scanned, info.replayed_ops);
  EXPECT_EQ(recovered->node_count(), f.store.node_count());
}

}  // namespace
}  // namespace natix
