// Fuzz coverage of the self-describing record codec (format v2): direct
// builder/view round trips including the wide-topology escape, error
// paths, and whole-store round trips (random trees x K sweep) through
// MaterializeDocument(), which rebuilds the document from record bytes
// alone and must reproduce the source tree exactly.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "core/heuristics.h"
#include "storage/record.h"
#include "storage/store.h"
#include "xml/importer.h"

namespace natix {
namespace {

// Random XML with a small vocabulary, text runs and attributes.
std::string RandomXml(Rng& rng, int ops) {
  static constexpr const char* kNames[] = {"a", "b", "c", "d", "e"};
  std::string xml = "<a>";
  std::vector<const char*> stack = {"a"};
  for (int i = 0; i < ops; ++i) {
    const double dice = rng.NextDouble();
    if (dice < 0.35) {
      const char* name = kNames[rng.NextBounded(5)];
      xml += std::string("<") + name + ">";
      stack.push_back(name);
    } else if (dice < 0.6 && stack.size() > 1) {
      xml += std::string("</") + stack.back() + ">";
      stack.pop_back();
    } else if (dice < 0.8) {
      xml += std::string(1 + rng.NextBounded(60), 'x');
      xml += ' ';
    } else {
      xml += std::string("<") + kNames[rng.NextBounded(5)] + " k=\"v\"/>";
    }
  }
  while (!stack.empty()) {
    xml += std::string("</") + stack.back() + ">";
    stack.pop_back();
  }
  return xml;
}

// Structural equality of two trees plus per-node content equality.
void ExpectDocumentsEqual(const ImportedDocument& got,
                          const ImportedDocument& want) {
  ASSERT_EQ(got.tree.size(), want.tree.size());
  for (NodeId v = 0; v < want.tree.size(); ++v) {
    EXPECT_EQ(got.tree.Parent(v), want.tree.Parent(v)) << v;
    EXPECT_EQ(got.tree.FirstChild(v), want.tree.FirstChild(v)) << v;
    EXPECT_EQ(got.tree.NextSibling(v), want.tree.NextSibling(v)) << v;
    EXPECT_EQ(got.tree.PrevSibling(v), want.tree.PrevSibling(v)) << v;
    EXPECT_EQ(got.tree.WeightOf(v), want.tree.WeightOf(v)) << v;
    EXPECT_EQ(got.tree.KindOf(v), want.tree.KindOf(v)) << v;
    EXPECT_EQ(got.tree.LabelOf(v), want.tree.LabelOf(v)) << v;
    EXPECT_EQ(got.ContentOf(v), want.ContentOf(v)) << v;
  }
  EXPECT_EQ(got.overflow_nodes, want.overflow_nodes);
  EXPECT_EQ(got.overflow_bytes, want.overflow_bytes);
}

TEST(RecordCodecFuzzTest, StoreRoundTripsRandomTreesAcrossK) {
  Rng rng(4242);
  for (int iter = 0; iter < 6; ++iter) {
    const std::string xml = RandomXml(rng, 80 + iter * 40);
    for (const TotalWeight limit : {8ull, 32ull, 256ull}) {
      WeightModel model;
      model.max_node_slots = static_cast<uint32_t>(limit);
      Result<ImportedDocument> imp = ImportXml(xml, model);
      ASSERT_TRUE(imp.ok()) << xml;
      const ImportedDocument doc = std::move(imp).value();
      const Result<Partitioning> p = EkmPartition(doc.tree, limit);
      ASSERT_TRUE(p.ok());
      Result<NatixStore> store = NatixStore::Build(doc.Clone(), *p, limit);
      ASSERT_TRUE(store.ok()) << store.status().ToString();
      const Result<ImportedDocument> rebuilt = store->MaterializeDocument();
      ASSERT_TRUE(rebuilt.ok())
          << rebuilt.status().ToString() << " K=" << limit;
      ExpectDocumentsEqual(*rebuilt, doc);
      // Same decode with the document gone: records must still carry
      // everything (overflow content moves to the side map on release).
      ASSERT_TRUE(store->ReleaseDocument().ok());
      const Result<ImportedDocument> released = store->MaterializeDocument();
      ASSERT_TRUE(released.ok())
          << released.status().ToString() << " K=" << limit;
      ExpectDocumentsEqual(*released, doc);
    }
  }
}

// English-ish filler: compresses well under the v3 content codec, unlike
// a single repeated byte which stresses the deep-code path.
std::string RandomText(Rng& rng, size_t len) {
  static constexpr const char* kWords[] = {"the",  "quick", "brown", "fox",
                                           "price", "item",  "2024",  "&"};
  std::string out;
  while (out.size() < len) {
    out += kWords[rng.NextBounded(8)];
    out += ' ';
  }
  out.resize(len);
  return out;
}

TEST(RecordCodecFuzzTest, BuilderViewRoundTripRandomRecords) {
  Rng rng(7);
  for (int iter = 0; iter < 200; ++iter) {
    const uint32_t n = 1 + rng.NextBounded(20);
    // ~Every 4th record exercises the wide topology path via big weights;
    // formats alternate so both encoders stay under the same fuzz.
    const bool wide = iter % 4 == 0;
    RecordBuilder builder(8, iter % 2 == 0 ? kRecordFormatV3
                                           : kRecordFormatV2);
    std::vector<RecordNodeSpec> specs(n);
    std::vector<std::string> contents(n);
    std::vector<RecordProxy> proxies;
    for (uint32_t i = 0; i < n; ++i) {
      RecordNodeSpec& spec = specs[i];
      spec.node = static_cast<NodeId>(rng.NextBounded(1u << 20));
      spec.weight = 1 + rng.NextBounded(wide ? 1u << 20 : 60u);
      spec.kind = static_cast<uint8_t>(rng.NextBounded(4));
      spec.label = static_cast<int32_t>(rng.NextBounded(10)) - 1;
      contents[i] = rng.NextBool(0.5)
                        ? RandomText(rng, rng.NextBounded(100))
                        : std::string(rng.NextBounded(100),
                                      static_cast<char>('a' + i));
      spec.content = contents[i];
      spec.overflow = !contents[i].empty() && rng.NextBool(0.2);
      const auto link = [&](RecordEdge edge) -> int32_t {
        const double dice = rng.NextDouble();
        if (dice < 0.4) return kEdgeNone;
        if (dice < 0.55) {
          RecordProxy proxy;
          proxy.from_index = i;
          proxy.edge = edge;
          proxy.target_node = static_cast<NodeId>(rng.NextBounded(1u << 20));
          proxy.target_partition =
              static_cast<uint32_t>(rng.NextBounded(1000));
          proxy.target_record =
              RecordId{static_cast<uint32_t>(rng.NextBounded(1000))};
          proxy.target_slot = static_cast<uint32_t>(rng.NextBounded(64));
          proxies.push_back(proxy);
          builder.AddProxy(proxy);
          return kEdgeRemote;
        }
        return static_cast<int32_t>(rng.NextBounded(n));
      };
      spec.parent = rng.NextBool(0.3)
                        ? kEdgeNone
                        : static_cast<int32_t>(rng.NextBounded(n));
      spec.first_child = link(RecordEdge::kFirstChild);
      spec.next_sibling = link(RecordEdge::kNextSibling);
      spec.prev_sibling = link(RecordEdge::kPrevSibling);
      builder.AddNode(spec);
    }
    RecordAggregate agg;
    if (rng.NextBool(0.7)) {
      agg.parent_node = static_cast<NodeId>(rng.NextBounded(1u << 20));
      agg.parent_partition = static_cast<uint32_t>(rng.NextBounded(1000));
      agg.parent_record =
          RecordId{static_cast<uint32_t>(rng.NextBounded(1000))};
      agg.parent_slot = static_cast<uint32_t>(rng.NextBounded(64));
      builder.SetAggregate(agg);
    }
    const Result<std::vector<uint8_t>> bytes = builder.Build();
    ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();
    EXPECT_EQ(bytes->size(), builder.ByteSize());
    const Result<RecordView> view =
        RecordView::Parse(bytes->data(), bytes->size());
    ASSERT_TRUE(view.ok()) << view.status().ToString();
    ASSERT_EQ(view->node_count(), n);
    EXPECT_EQ(view->aggregate(), agg);
    for (uint32_t i = 0; i < n; ++i) {
      EXPECT_EQ(view->node_id(i), specs[i].node) << i;
      EXPECT_EQ(view->weight(i), specs[i].weight) << i;
      EXPECT_EQ(view->parent(i), specs[i].parent) << i;
      EXPECT_EQ(view->first_child(i), specs[i].first_child) << i;
      EXPECT_EQ(view->next_sibling(i), specs[i].next_sibling) << i;
      EXPECT_EQ(view->prev_sibling(i), specs[i].prev_sibling) << i;
      EXPECT_EQ(view->kind(i), specs[i].kind) << i;
      EXPECT_EQ(view->label(i), specs[i].label) << i;
      EXPECT_EQ(view->overflow(i), specs[i].overflow) << i;
      if (specs[i].overflow) {
        EXPECT_EQ(view->overflow_bytes(i), contents[i].size()) << i;
        EXPECT_TRUE(view->content(i).empty()) << i;
      } else {
        EXPECT_EQ(view->content(i), contents[i]) << i;
      }
      EXPECT_EQ(view->IndexOf(specs[i].node) >= 0, true) << i;
    }
    ASSERT_EQ(view->proxy_count(), proxies.size());
    for (const RecordProxy& want : proxies) {
      const std::optional<RecordProxy> got =
          view->FindProxy(want.from_index, want.edge);
      ASSERT_TRUE(got.has_value());
      EXPECT_EQ(*got, want);
    }
    // An edge nobody proxied must not resolve.
    EXPECT_FALSE(view->FindProxy(n + 1, RecordEdge::kFirstChild).has_value());
  }
}

TEST(RecordCodecFuzzTest, TruncationNeverParses) {
  Rng rng(99);
  for (int iter = 0; iter < 20; ++iter) {
    RecordBuilder builder(8, iter % 2 == 0 ? kRecordFormatV3
                                           : kRecordFormatV2);
    const uint32_t n = 1 + rng.NextBounded(6);
    std::vector<std::string> contents(n);
    for (uint32_t i = 0; i < n; ++i) {
      RecordNodeSpec spec;
      spec.node = i;
      spec.weight = 1 + rng.NextBounded(9);
      contents[i] = rng.NextBool(0.5)
                        ? RandomText(rng, rng.NextBounded(50))
                        : std::string(rng.NextBounded(50), 'q');
      spec.content = contents[i];
      builder.AddNode(spec);
    }
    const Result<std::vector<uint8_t>> bytes = builder.Build();
    ASSERT_TRUE(bytes.ok());
    for (size_t cut = 0; cut < bytes->size(); ++cut) {
      EXPECT_FALSE(RecordView::Parse(bytes->data(), cut).ok()) << cut;
    }
    ASSERT_TRUE(RecordView::Parse(bytes->data(), bytes->size()).ok());
  }
}

// v3-specific coverage: compressed cells round-trip exactly, shrink the
// record relative to v2, and corrupt payloads are reported rather than
// silently decoded.
TEST(RecordCodecTest, CompressedContentRoundTripsAndShrinks) {
  const std::string text =
      "The quick brown fox jumps over the lazy dog while the auction "
      "lists an open item with a reserve price and a current bid of 42.";
  RecordBuilder v3(8, kRecordFormatV3);
  RecordBuilder v2(8, kRecordFormatV2);
  RecordNodeSpec spec;
  spec.node = 1;
  spec.weight = 18;
  spec.kind = 1;
  spec.label = 3;
  spec.content = text;
  v3.AddNode(spec);
  v2.AddNode(spec);
  const Result<std::vector<uint8_t>> b3 = v3.Build();
  const Result<std::vector<uint8_t>> b2 = v2.Build();
  ASSERT_TRUE(b3.ok() && b2.ok());
  EXPECT_LT(b3->size(), b2->size());
  const Result<RecordView> view = RecordView::Parse(b3->data(), b3->size());
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  EXPECT_TRUE(view->VerifyContent(0).ok());
  EXPECT_EQ(view->content(0), text);
  EXPECT_EQ(view->label(0), 3);
  EXPECT_EQ(view->kind(0), 1);
  // The logical (slot-rounded) size is unchanged by compression.
  EXPECT_EQ(view->content_bytes(0), (text.size() + 7) / 8 * 8);
}

TEST(RecordCodecTest, V3RejectsCorruptCompressedPayload) {
  const std::string text(200, 'e');  // 1-symbol stream, compresses hard
  RecordBuilder builder;  // v3 default
  RecordNodeSpec spec;
  spec.node = 1;
  spec.weight = 26;
  spec.content = text;
  builder.AddNode(spec);
  Result<std::vector<uint8_t>> bytes = builder.Build();
  ASSERT_TRUE(bytes.ok());
  {
    const Result<RecordView> clean =
        RecordView::Parse(bytes->data(), bytes->size());
    ASSERT_TRUE(clean.ok());
    ASSERT_TRUE(clean->VerifyContent(0).ok());
  }
  // Flip the last payload byte. The prefix code is injective, so a
  // damaged stream can never verify *and* still decode to the original
  // text: either the symbol/length bookkeeping breaks (VerifyContent
  // fails) or the decoded run differs.
  std::vector<uint8_t> flipped = *bytes;
  flipped.back() ^= 0xFF;
  const Result<RecordView> view =
      RecordView::Parse(flipped.data(), flipped.size());
  if (view.ok()) {
    EXPECT_FALSE(view->VerifyContent(0).ok() && view->content(0) == text);
  }
  // Truncating the payload is always caught: the last entry must end
  // exactly at the record's final byte.
  EXPECT_FALSE(
      RecordView::Parse(bytes->data(), bytes->size() - 1).ok());
}

TEST(RecordCodecTest, V2RecordsStillParseUnderV3Default) {
  // Read-compat: bytes written by a v2 builder (what every pre-v3 store
  // holds) must decode identically through the same view/decoder that
  // now defaults to writing v3.
  RecordBuilder v2(8, kRecordFormatV2);
  RecordNodeSpec spec;
  spec.node = 9;
  spec.weight = 4;
  spec.kind = 2;
  spec.label = 7;
  spec.content = "legacy cell";
  v2.AddNode(spec);
  const Result<std::vector<uint8_t>> bytes = v2.Build();
  ASSERT_TRUE(bytes.ok());
  const Result<DecodedRecord> rec = DecodeRecord(bytes->data(), bytes->size());
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_EQ(rec->nodes[0].node, 9u);
  EXPECT_EQ(rec->nodes[0].kind, 2);
  EXPECT_EQ(rec->nodes[0].label, 7);
  EXPECT_EQ(rec->nodes[0].content, "legacy cell");
}

TEST(RecordCodecTest, V3RejectsOversizedKind) {
  RecordBuilder builder;  // v3: kind must fit the 3-bit meta field
  RecordNodeSpec spec;
  spec.node = 1;
  spec.weight = 1;
  spec.kind = 8;
  builder.AddNode(spec);
  EXPECT_FALSE(builder.Build().ok());
}

TEST(RecordCodecTest, BuilderRejectsOutOfRangeLinks) {
  RecordBuilder builder;
  RecordNodeSpec spec;
  spec.node = 1;
  spec.weight = 1;
  spec.first_child = 5;  // only one node in the record
  builder.AddNode(spec);
  EXPECT_FALSE(builder.Build().ok());
}

TEST(RecordCodecTest, BuilderRejectsDuplicateProxy) {
  RecordBuilder builder;
  RecordNodeSpec spec;
  spec.node = 1;
  spec.weight = 1;
  spec.first_child = kEdgeRemote;
  builder.AddNode(spec);
  RecordProxy proxy;
  proxy.from_index = 0;
  proxy.edge = RecordEdge::kFirstChild;
  proxy.target_node = 7;
  builder.AddProxy(proxy);
  builder.AddProxy(proxy);  // same (node, edge) key twice
  EXPECT_FALSE(builder.Build().ok());
}

}  // namespace
}  // namespace natix
