#include "xml/parser.h"

#include <gtest/gtest.h>

namespace natix {
namespace {

// Drains the parser into a compact trace string like
// "+root text(hi) -root" for easy assertions.
std::string Trace(std::string_view xml) {
  XmlParser parser(xml);
  std::string out;
  for (;;) {
    Result<XmlEvent> ev = parser.Next();
    if (!ev.ok()) return "ERROR: " + ev.status().message();
    if (!out.empty()) out += ' ';
    switch (ev->type) {
      case XmlEventType::kEndDocument:
        out += "eof";
        return out;
      case XmlEventType::kStartElement: {
        out += '+' + ev->name;
        for (const XmlAttribute& a : ev->attributes) {
          out += '[' + a.name + '=' + a.value + ']';
        }
        break;
      }
      case XmlEventType::kEndElement:
        out += '-' + ev->name;
        break;
      case XmlEventType::kText:
        out += "text(" + ev->content + ")";
        break;
      case XmlEventType::kComment:
        out += "comment(" + ev->content + ")";
        break;
      case XmlEventType::kProcessingInstruction:
        out += "pi(" + ev->name + ":" + ev->content + ")";
        break;
    }
  }
}

TEST(XmlParserTest, MinimalDocument) {
  EXPECT_EQ(Trace("<a/>"), "+a -a eof");
}

TEST(XmlParserTest, NestedElements) {
  EXPECT_EQ(Trace("<a><b><c/></b></a>"), "+a +b +c -c -b -a eof");
}

TEST(XmlParserTest, TextContent) {
  EXPECT_EQ(Trace("<a>hello</a>"), "+a text(hello) -a eof");
}

TEST(XmlParserTest, MixedContent) {
  EXPECT_EQ(Trace("<a>x<b/>y</a>"), "+a text(x) +b -b text(y) -a eof");
}

TEST(XmlParserTest, Attributes) {
  EXPECT_EQ(Trace("<a id=\"1\" name='n'/>"), "+a[id=1][name=n] -a eof");
}

TEST(XmlParserTest, AttributeEntities) {
  EXPECT_EQ(Trace("<a t=\"&lt;&amp;&quot;\"/>"), "+a[t=<&\"] -a eof");
}

TEST(XmlParserTest, PredefinedEntities) {
  EXPECT_EQ(Trace("<a>&lt;tag&gt; &amp; &apos;q&apos;</a>"),
            "+a text(<tag> & 'q') -a eof");
}

TEST(XmlParserTest, NumericCharacterReferences) {
  EXPECT_EQ(Trace("<a>&#65;&#x42;</a>"), "+a text(AB) -a eof");
}

TEST(XmlParserTest, Utf8CharacterReference) {
  // U+00E9 LATIN SMALL LETTER E WITH ACUTE = 0xC3 0xA9.
  XmlParser parser("<a>&#233;</a>");
  Result<XmlEvent> ev = parser.Next();  // +a
  ASSERT_TRUE(ev.ok());
  ev = parser.Next();
  ASSERT_TRUE(ev.ok());
  EXPECT_EQ(ev->content, "\xC3\xA9");
}

TEST(XmlParserTest, CData) {
  EXPECT_EQ(Trace("<a><![CDATA[<raw> & stuff]]></a>"),
            "+a text(<raw> & stuff) -a eof");
}

TEST(XmlParserTest, Comments) {
  EXPECT_EQ(Trace("<!-- pre --><a><!-- in --></a>"),
            "comment( pre ) +a comment( in ) -a eof");
}

TEST(XmlParserTest, ProcessingInstruction) {
  EXPECT_EQ(Trace("<a><?php echo?></a>"), "+a pi(php:echo) -a eof");
}

TEST(XmlParserTest, XmlDeclarationSkipped) {
  EXPECT_EQ(Trace("<?xml version=\"1.0\" encoding=\"UTF-8\"?><a/>"),
            "+a -a eof");
}

TEST(XmlParserTest, DoctypeSkipped) {
  EXPECT_EQ(Trace("<!DOCTYPE html><a/>"), "+a -a eof");
  EXPECT_EQ(Trace("<!DOCTYPE doc [ <!ELEMENT doc (#PCDATA)> ]><doc/>"),
            "+doc -doc eof");
}

TEST(XmlParserTest, WhitespaceAroundRoot) {
  EXPECT_EQ(Trace("  \n <a/> \n"), "+a -a eof");
}

TEST(XmlParserTest, NamesWithColonsAndDots) {
  EXPECT_EQ(Trace("<ns:a x.y-z=\"1\"/>"), "+ns:a[x.y-z=1] -ns:a eof");
}

TEST(XmlParserTest, RejectsMismatchedTags) {
  EXPECT_TRUE(Trace("<a><b></a></b>").starts_with("ERROR"));
}

TEST(XmlParserTest, RejectsUnclosedRoot) {
  EXPECT_TRUE(Trace("<a><b></b>").starts_with("ERROR"));
}

TEST(XmlParserTest, RejectsSecondRoot) {
  EXPECT_TRUE(Trace("<a/><b/>").starts_with("ERROR"));
}

TEST(XmlParserTest, RejectsTextOutsideRoot) {
  EXPECT_TRUE(Trace("hello<a/>").starts_with("ERROR"));
  EXPECT_TRUE(Trace("<a/>bye").starts_with("ERROR"));
}

TEST(XmlParserTest, RejectsEmptyInput) {
  EXPECT_TRUE(Trace("").starts_with("ERROR"));
}

TEST(XmlParserTest, RejectsUnknownEntity) {
  EXPECT_TRUE(Trace("<a>&nbsp;</a>").starts_with("ERROR"));
}

TEST(XmlParserTest, RejectsDuplicateAttribute) {
  EXPECT_TRUE(Trace("<a x=\"1\" x=\"2\"/>").starts_with("ERROR"));
}

TEST(XmlParserTest, RejectsRawLessThanInAttribute) {
  EXPECT_TRUE(Trace("<a x=\"<\"/>").starts_with("ERROR"));
}

TEST(XmlParserTest, RejectsUnterminatedComment) {
  EXPECT_TRUE(Trace("<a><!-- oops</a>").starts_with("ERROR"));
}

TEST(XmlParserTest, ErrorsCarryLineNumbers) {
  XmlParser parser("<a>\n\n<b></c>\n</a>");
  for (;;) {
    Result<XmlEvent> ev = parser.Next();
    if (!ev.ok()) {
      EXPECT_NE(ev.status().message().find("line 3"), std::string::npos)
          << ev.status().message();
      break;
    }
    ASSERT_NE(ev->type, XmlEventType::kEndDocument) << "expected an error";
  }
}

TEST(XmlParserTest, DeeplyNestedDocument) {
  std::string xml;
  constexpr int kDepth = 50000;
  for (int i = 0; i < kDepth; ++i) xml += "<d>";
  for (int i = 0; i < kDepth; ++i) xml += "</d>";
  XmlParser parser(xml);
  size_t events = 0;
  for (;;) {
    Result<XmlEvent> ev = parser.Next();
    ASSERT_TRUE(ev.ok());
    if (ev->type == XmlEventType::kEndDocument) break;
    ++events;
  }
  EXPECT_EQ(events, 2u * kDepth);
}

}  // namespace
}  // namespace natix
