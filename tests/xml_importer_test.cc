#include "xml/importer.h"

#include <gtest/gtest.h>

#include "core/algorithm.h"
#include "tests/test_util.h"
#include "xml/weight_model.h"

namespace natix {
namespace {

TEST(WeightModelTest, MetadataOnly) {
  WeightModel m;
  EXPECT_EQ(m.NodeWeight(0), 1u);
}

TEST(WeightModelTest, ContentSlots) {
  WeightModel m;  // 8-byte slots
  EXPECT_EQ(m.NodeWeight(1), 2u);
  EXPECT_EQ(m.NodeWeight(8), 2u);
  EXPECT_EQ(m.NodeWeight(9), 3u);
  EXPECT_EQ(m.NodeWeight(64), 9u);
}

TEST(WeightModelTest, OverflowStub) {
  WeightModel m;
  m.max_node_slots = 4;
  EXPECT_EQ(m.NodeWeight(8), 2u);       // fits inline
  EXPECT_FALSE(m.Overflows(8));
  EXPECT_EQ(m.NodeWeight(1000), 2u);    // stub: metadata + pointer
  EXPECT_TRUE(m.Overflows(1000));
}

TEST(WeightModelTest, CustomSlotSize) {
  WeightModel m;
  m.slot_size = 4;
  m.metadata_slots = 2;
  EXPECT_EQ(m.NodeWeight(0), 2u);
  EXPECT_EQ(m.NodeWeight(5), 4u);
}

TEST(ImporterTest, SimpleDocument) {
  const WeightModel model;
  const Result<ImportedDocument> imp =
      ImportXml("<a><b>12345678</b><c x=\"12\"/></a>", model);
  ASSERT_TRUE(imp.ok()) << imp.status().ToString();
  const Tree& t = imp->tree;
  // Nodes: a, b, text(8 bytes), c, @x(2 bytes).
  ASSERT_EQ(t.size(), 5u);
  EXPECT_EQ(t.LabelOf(0), "a");
  EXPECT_EQ(t.WeightOf(0), 1u);
  EXPECT_EQ(t.KindOf(2), NodeKind::kText);
  EXPECT_EQ(t.WeightOf(2), 2u);  // 1 metadata + 1 content slot
  EXPECT_EQ(t.KindOf(4), NodeKind::kAttribute);
  EXPECT_EQ(t.LabelOf(4), "x");
  EXPECT_EQ(t.WeightOf(4), 2u);
  EXPECT_EQ(imp->content_total_bytes, 10u);
  EXPECT_TRUE(t.Validate().ok());
}

TEST(ImporterTest, DocumentOrderPreserved) {
  const Result<ImportedDocument> imp =
      ImportXml("<a><b/><c><d/></c><e/></a>", WeightModel());
  ASSERT_TRUE(imp.ok());
  const Tree& t = imp->tree;
  std::vector<std::string> labels;
  for (const NodeId v : t.PreorderNodes()) labels.emplace_back(t.LabelOf(v));
  EXPECT_EQ(labels, (std::vector<std::string>{"a", "b", "c", "d", "e"}));
}

TEST(ImporterTest, OverflowAccounting) {
  WeightModel model;
  model.max_node_slots = 4;  // content > 3 slots (24 bytes) overflows
  const std::string big(100, 'x');
  const Result<ImportedDocument> imp =
      ImportXml("<a><t>" + big + "</t></a>", model);
  ASSERT_TRUE(imp.ok());
  EXPECT_EQ(imp->overflow_nodes, 1u);
  EXPECT_EQ(imp->overflow_bytes, 100u);
  EXPECT_EQ(imp->tree.MaxNodeWeight(), 2u);  // stub weight
}

TEST(ImporterTest, OverflowKeepsDocumentPartitionable) {
  // A node with 10KB of text exceeds K = 256 slots inline; with overflow
  // enabled the tree stays partitionable.
  WeightModel inline_model;
  WeightModel overflow_model;
  overflow_model.max_node_slots = 256;
  const std::string big(10000, 'y');
  const std::string xml = "<a><t>" + big + "</t></a>";
  const Result<ImportedDocument> no_overflow = ImportXml(xml, inline_model);
  ASSERT_TRUE(no_overflow.ok());
  EXPECT_FALSE(CheckPartitionable(no_overflow->tree, 256).ok());
  const Result<ImportedDocument> with_overflow =
      ImportXml(xml, overflow_model);
  ASSERT_TRUE(with_overflow.ok());
  EXPECT_TRUE(CheckPartitionable(with_overflow->tree, 256).ok());
}

TEST(ImporterTest, SourceBytesRecorded) {
  const std::string xml = "<a><b/></a>";
  const Result<ImportedDocument> imp = ImportXml(xml, WeightModel());
  ASSERT_TRUE(imp.ok());
  EXPECT_EQ(imp->source_bytes, xml.size());
}

TEST(ImporterTest, ImportedTreeIsPartitionable) {
  const char* xml =
      "<orders><order id=\"1\"><key>42</key><status>OK</status>"
      "<price>100.50</price></order><order id=\"2\"><key>43</key>"
      "<comment>a somewhat longer comment string here</comment>"
      "</order></orders>";
  const Result<ImportedDocument> imp = ImportXml(xml, WeightModel());
  ASSERT_TRUE(imp.ok());
  for (const std::string_view algo : AlgorithmNames()) {
    if (algo == "FDW") continue;
    const Result<Partitioning> p = PartitionWith(algo, imp->tree, 8);
    ASSERT_TRUE(p.ok()) << algo;
    testing_util::MustBeFeasible(imp->tree, *p, 8, std::string(algo));
  }
}

TEST(ImporterTest, ParseErrorPropagates) {
  EXPECT_FALSE(ImportXml("<a><b></a>", WeightModel()).ok());
}

}  // namespace
}  // namespace natix
