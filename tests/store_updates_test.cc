#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "core/heuristics.h"
#include "datagen/generator.h"
#include "query/parser.h"
#include "query/reference_evaluator.h"
#include "query/evaluator.h"
#include "query/xpathmark.h"
#include "storage/record.h"
#include "storage/record_manager.h"
#include "storage/store.h"
#include "xml/importer.h"

namespace natix {
namespace {

// ------------------------------------------- record manager mutation ----

TEST(RecordManagerUpdateTest, FreeRecyclesIdsAndSpace) {
  RecordManager mgr(1024);
  const RecordId a = *mgr.Insert(std::vector<uint8_t>(200, 1));
  const RecordId b = *mgr.Insert(std::vector<uint8_t>(200, 2));
  ASSERT_TRUE(mgr.Free(a).ok());
  EXPECT_EQ(mgr.record_count(), 1u);
  EXPECT_EQ(mgr.free_count(), 1u);
  EXPECT_FALSE(mgr.Get(a).ok());
  // Double free is rejected.
  EXPECT_FALSE(mgr.Free(a).ok());
  // The freed logical id and its page space are both recycled.
  const RecordId c = *mgr.Insert(std::vector<uint8_t>(200, 3));
  EXPECT_EQ(c.value, a.value);
  EXPECT_EQ(mgr.page_count(), 1u);
  const auto got_b = mgr.Get(b);
  ASSERT_TRUE(got_b.ok());
  EXPECT_EQ(got_b->first[0], 2);
}

TEST(RecordManagerUpdateTest, ShrinkingUpdateStaysInPlace) {
  RecordManager mgr(1024);
  const RecordId id = *mgr.Insert(std::vector<uint8_t>(400, 1));
  const uint32_t page = mgr.PageOf(id);
  ASSERT_TRUE(mgr.Update(id, std::vector<uint8_t>(100, 2)).ok());
  EXPECT_EQ(mgr.PageOf(id), page);
  EXPECT_EQ(mgr.relocation_count(), 0u);
  EXPECT_EQ(mgr.payload_bytes(), 100u);
  const auto got = mgr.Get(id);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->second, 100u);
  EXPECT_EQ(got->first[0], 2);
}

TEST(RecordManagerUpdateTest, GrowingUpdateRelocates) {
  RecordManager mgr(1024, /*lookback=*/1);
  const RecordId grower = *mgr.Insert(std::vector<uint8_t>(400, 1));
  const RecordId neighbor = *mgr.Insert(std::vector<uint8_t>(500, 2));
  const uint32_t page = mgr.PageOf(grower);
  EXPECT_EQ(page, mgr.PageOf(neighbor));
  // 900 bytes no longer fit next to the neighbor: the record must move,
  // while its id stays valid.
  ASSERT_TRUE(mgr.Update(grower, std::vector<uint8_t>(900, 3)).ok());
  EXPECT_EQ(mgr.relocation_count(), 1u);
  EXPECT_NE(mgr.PageOf(grower), page);
  const auto got = mgr.Get(grower);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->second, 900u);
  EXPECT_EQ(got->first[0], 3);
  // The neighbor is untouched.
  const auto got_n = mgr.Get(neighbor);
  ASSERT_TRUE(got_n.ok());
  EXPECT_EQ(got_n->second, 500u);
  EXPECT_EQ(got_n->first[0], 2);
}

TEST(RecordManagerUpdateTest, UpdateCrossesJumboBoundaryBothWays) {
  RecordManager mgr(512);
  const RecordId id = *mgr.Insert(std::vector<uint8_t>(100, 1));
  EXPECT_FALSE(mgr.IsJumbo(id));
  // Grow past one page: becomes jumbo.
  ASSERT_TRUE(mgr.Update(id, std::vector<uint8_t>(2000, 2)).ok());
  EXPECT_TRUE(mgr.IsJumbo(id));
  EXPECT_EQ(mgr.jumbo_record_count(), 1u);
  EXPECT_EQ(mgr.Get(id)->second, 2000u);
  // Shrink back below a page: returns to slotted storage.
  ASSERT_TRUE(mgr.Update(id, std::vector<uint8_t>(50, 3)).ok());
  EXPECT_FALSE(mgr.IsJumbo(id));
  EXPECT_EQ(mgr.jumbo_record_count(), 0u);
  const auto got = mgr.Get(id);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->second, 50u);
  EXPECT_EQ(got->first[0], 3);
}

TEST(RecordManagerUpdateTest, FreedSpaceFoundBeyondLookback) {
  // Lookback 1 cannot see page 0 once page 1 exists; the reuse-candidate
  // stack must still route a fitting record back to the freed space.
  RecordManager mgr(1024, /*lookback=*/1);
  const RecordId a = *mgr.Insert(std::vector<uint8_t>(900, 1));
  ASSERT_TRUE(mgr.Insert(std::vector<uint8_t>(900, 2)).ok());
  ASSERT_TRUE(mgr.Insert(std::vector<uint8_t>(900, 3)).ok());
  EXPECT_EQ(mgr.page_count(), 3u);
  ASSERT_TRUE(mgr.Free(a).ok());
  const RecordId d = *mgr.Insert(std::vector<uint8_t>(800, 4));
  EXPECT_EQ(mgr.page_count(), 3u);
  EXPECT_EQ(mgr.PageOf(d), 0u);
}

TEST(PageUpdateTest, CompactionReclaimsHoles) {
  Page page(1024);
  const uint16_t s0 = *page.Insert(std::vector<uint8_t>(300, 1));
  const uint16_t s1 = *page.Insert(std::vector<uint8_t>(300, 2));
  const uint16_t s2 = *page.Insert(std::vector<uint8_t>(300, 3));
  ASSERT_TRUE(page.Free(s1).ok());
  // 300 freed + a ~90-byte tail: a 350-byte record fits only after
  // compaction slides s2 left.
  const Result<uint16_t> s3 = page.Insert(std::vector<uint8_t>(350, 4));
  ASSERT_TRUE(s3.ok());
  EXPECT_EQ(*s3, s1);  // tombstoned slot is reused
  EXPECT_GE(page.compaction_count(), 1u);
  // Survivors kept their slots and bytes.
  EXPECT_EQ(page.Get(s0)->first[0], 1);
  EXPECT_EQ(page.Get(s2)->first[0], 3);
  EXPECT_EQ(page.Get(*s3)->first[0], 4);
}

// ------------------------------------------------------ store inserts ----

ImportedDocument ImportScaled(double scale, uint32_t max_node_slots) {
  WeightModel model;
  model.max_node_slots = max_node_slots;
  Result<ImportedDocument> imp = ImportXml(GenerateXmark(5, scale), model);
  EXPECT_TRUE(imp.ok()) << imp.status().ToString();
  return std::move(imp).value();
}

NatixStore BuildStore(ImportedDocument doc, TotalWeight limit) {
  Result<Partitioning> p = EkmPartition(doc.tree, limit);
  EXPECT_TRUE(p.ok());
  Result<NatixStore> store = NatixStore::Build(std::move(doc), *p, limit);
  EXPECT_TRUE(store.ok()) << store.status().ToString();
  return std::move(store).value();
}

/// Runs every XPathMark query against `store` and the reference tree
/// evaluator; both must agree node for node.
void ExpectQueriesMatchReference(const NatixStore& store,
                                 const std::string& context) {
  AccessStats stats;
  StoreQueryEvaluator eval(&store, &stats);
  for (const XPathMarkQuery& q : XPathMarkQueries()) {
    const Result<PathExpr> path = ParseXPath(q.text);
    ASSERT_TRUE(path.ok()) << q.id;
    const Result<std::vector<NodeId>> got = eval.Evaluate(*path);
    const Result<std::vector<NodeId>> want =
        EvaluateOnTree(store.tree(), *path);
    ASSERT_TRUE(got.ok() && want.ok()) << context << " " << q.id;
    EXPECT_EQ(*got, *want) << context << " " << q.id;
  }
}

/// Applies `count` randomized inserts (random parent/position, small
/// random content) through the store.
void RandomInserts(NatixStore* store, int count, Rng* rng) {
  static constexpr const char* kLabels[] = {"item", "note", "entry", "x"};
  for (int i = 0; i < count; ++i) {
    const Tree& t = store->tree();
    const NodeId parent = static_cast<NodeId>(rng->NextBounded(t.size()));
    NodeId before = kInvalidNode;
    if (t.ChildCount(parent) > 0 && rng->NextBool(0.4)) {
      const std::vector<NodeId> kids = t.Children(parent);
      before = kids[rng->NextBounded(kids.size())];
    }
    const bool text = rng->NextBool(0.5);
    std::string content;
    if (text) content.assign(1 + rng->NextBounded(40), 'a' + i % 26);
    const Result<NodeId> id = store->InsertBefore(
        parent, before, text ? "" : kLabels[rng->NextBounded(4)],
        text ? NodeKind::kText : NodeKind::kElement, content);
    ASSERT_TRUE(id.ok()) << "insert " << i << ": " << id.status().ToString();
  }
}

TEST(StoreUpdateTest, InsertAppendsNodeAndRewritesOneRecord) {
  NatixStore store = BuildStore(ImportScaled(0.003, 256), 256);
  const size_t records_before = store.record_count();
  const NodeId root = store.tree().root();
  const Result<NodeId> id =
      store.InsertBefore(root, kInvalidNode, "fresh");
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(store.tree().Parent(*id), root);
  EXPECT_TRUE(store.RecordOfNode(*id).valid());
  const UpdateStats stats = store.update_stats();
  EXPECT_EQ(stats.inserts, 1u);
  // Without a split the containing record is rewritten, plus the left
  // sibling's record when that sibling lives elsewhere: its next-sibling
  // edge now names the new node and records are self-describing.
  EXPECT_EQ(stats.splits, 0u);
  const NodeId left = store.tree().PrevSibling(*id);
  const size_t expected_rewrites =
      left != kInvalidNode && !(store.RecordOfNode(left) ==
                                store.RecordOfNode(*id))
          ? 2u
          : 1u;
  EXPECT_EQ(stats.records_rewritten, expected_rewrites);
  EXPECT_EQ(store.record_count(), records_before);
}

TEST(StoreUpdateTest, RepeatedInsertsForceRecordSplit) {
  NatixStore store = BuildStore(ImportScaled(0.003, 64), 64);
  const size_t records_before = store.record_count();
  const NodeId root = store.tree().root();
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(
        store.InsertBefore(root, kInvalidNode, "bulk").ok());
  }
  const UpdateStats stats = store.update_stats();
  EXPECT_GT(stats.splits, 0u);
  EXPECT_GT(stats.records_created, 0u);
  EXPECT_GT(store.record_count(), records_before);
  ASSERT_NE(store.partitioner(), nullptr);
  EXPECT_TRUE(store.partitioner()->Validate().ok());
  ExpectQueriesMatchReference(store, "after append burst");
}

TEST(StoreUpdateTest, InsertedContentRoundTrips) {
  NatixStore store = BuildStore(ImportScaled(0.003, 256), 256);
  const NodeId root = store.tree().root();
  const Result<NodeId> id = store.InsertBefore(
      root, kInvalidNode, "", NodeKind::kText, "hello, mutable store");
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(store.document().ContentOf(*id), "hello, mutable store");
  // The node made it into its partition's record with inline content.
  const uint32_t part = store.PartitionOf(*id);
  const auto bytes = store.RecordBytes(part);
  ASSERT_TRUE(bytes.ok());
  const Result<DecodedRecord> rec =
      DecodeRecord(bytes->first, bytes->second);
  ASSERT_TRUE(rec.ok());
  bool found = false;
  for (const RecordNode& n : rec->nodes) {
    if (n.node == *id) {
      found = true;
      // Decoded content is slot-aligned: 20 bytes round up to 3 slots.
      EXPECT_EQ(n.content_bytes, 24u);
      EXPECT_FALSE(n.overflow);
    }
  }
  EXPECT_TRUE(found);
}

TEST(StoreUpdateTest, OversizedContentExternalizes) {
  NatixStore store = BuildStore(ImportScaled(0.003, 256), 256);
  const size_t overflow_before = store.overflow_page_count();
  const std::string huge(100000, 'x');
  const Result<NodeId> id = store.InsertBefore(
      store.tree().root(), kInvalidNode, "", NodeKind::kText, huge);
  ASSERT_TRUE(id.ok());
  EXPECT_GT(store.overflow_page_count(), overflow_before);
  ASSERT_NE(store.partitioner(), nullptr);
  EXPECT_TRUE(store.partitioner()->Validate().ok());
}

TEST(StoreUpdateTest, TenThousandRandomInsertsStayQueryCorrect) {
  constexpr TotalWeight kLimit = 256;
  NatixStore store = BuildStore(ImportScaled(0.02, kLimit), kLimit);
  Rng rng(99);
  constexpr int kTotal = 10000;
  constexpr int kChunk = 2500;
  for (int done = 0; done < kTotal; done += kChunk) {
    RandomInserts(&store, kChunk, &rng);
    ASSERT_NE(store.partitioner(), nullptr);
    ASSERT_TRUE(store.partitioner()->Validate().ok())
        << "after " << (done + kChunk) << " inserts";
    // Queries must be correct *mid-stream*, not only at the end.
    ExpectQueriesMatchReference(
        store, "after " + std::to_string(done + kChunk) + " inserts");
  }

  const UpdateStats stats = store.update_stats();
  EXPECT_EQ(stats.inserts, static_cast<uint64_t>(kTotal));
  // Per-insert work is proportional to the partitions touched: across a
  // random workload that averages a small constant, far below the
  // thousands of records the store holds.
  const uint64_t touched = stats.records_rewritten + stats.records_created;
  EXPECT_LT(touched, static_cast<uint64_t>(kTotal) * 4);
  EXPECT_GT(store.record_count(), 0u);

  // Equivalence: a fresh bulkload of the final document must answer every
  // query identically (same NodeIds -- the snapshot preserves them).
  Result<ImportedDocument> snapshot_r = store.SnapshotDocument();
  ASSERT_TRUE(snapshot_r.ok()) << snapshot_r.status().ToString();
  ImportedDocument snapshot = std::move(snapshot_r).value();
  const Result<Partitioning> fresh_p = EkmPartition(snapshot.tree, kLimit);
  ASSERT_TRUE(fresh_p.ok());
  const Result<NatixStore> fresh =
      NatixStore::Build(std::move(snapshot), *fresh_p, kLimit);
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();

  AccessStats grown_stats, fresh_stats;
  StoreQueryEvaluator grown_eval(&store, &grown_stats);
  StoreQueryEvaluator fresh_eval(&*fresh, &fresh_stats);
  for (const XPathMarkQuery& q : XPathMarkQueries()) {
    const Result<PathExpr> path = ParseXPath(q.text);
    ASSERT_TRUE(path.ok()) << q.id;
    const Result<std::vector<NodeId>> grown_r = grown_eval.Evaluate(*path);
    const Result<std::vector<NodeId>> fresh_r = fresh_eval.Evaluate(*path);
    ASSERT_TRUE(grown_r.ok() && fresh_r.ok()) << q.id;
    EXPECT_EQ(*grown_r, *fresh_r) << q.id;
  }
}

// ------------------------------------- delete / move / rename algebra ----

/// Picks a live node uniformly; the id space keeps tombstones forever,
/// so the draw retries until it lands on a live slot.
NodeId PickLive(const NatixStore& store, Rng* rng) {
  const size_t n = store.tree().size();
  for (int tries = 0; tries < 256; ++tries) {
    const auto v = static_cast<NodeId>(rng->NextBounded(n));
    if (store.IsLiveNode(v)) return v;
  }
  return 0;
}

/// True when v's subtree holds at most `cap` nodes.
bool SubtreeCapped(const Tree& t, NodeId v, size_t cap) {
  std::vector<NodeId> stack = {v};
  size_t n = 0;
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    if (++n > cap) return false;
    for (NodeId c = t.FirstChild(u); c != kInvalidNode; c = t.NextSibling(c)) {
      stack.push_back(c);
    }
  }
  return true;
}

/// Applies one op of the canonical mixed stream (~40% insert, 30%
/// delete-subtree, 20% move-subtree, 10% rename). Deletes convert back
/// into inserts while the live count sits below `size_floor`.
void RandomMixedOp(NatixStore* store, int i, size_t size_floor, Rng* rng) {
  static constexpr const char* kLabels[] = {"item", "note", "entry", "x"};
  const Tree& t = store->tree();
  uint64_t roll = rng->NextBounded(100);
  if (roll >= 40 && roll < 70 && store->live_node_count() < size_floor) {
    roll = 0;
  }
  if (roll < 40) {
    const NodeId parent = PickLive(*store, rng);
    NodeId before = kInvalidNode;
    if (t.ChildCount(parent) > 0 && rng->NextBool(0.4)) {
      const std::vector<NodeId> kids = t.Children(parent);
      before = kids[rng->NextBounded(kids.size())];
    }
    const bool text = rng->NextBool(0.5);
    std::string content;
    if (text) content.assign(1 + rng->NextBounded(40), 'a' + i % 26);
    const Result<NodeId> id = store->InsertBefore(
        parent, before, text ? "" : kLabels[rng->NextBounded(4)],
        text ? NodeKind::kText : NodeKind::kElement, content);
    ASSERT_TRUE(id.ok()) << "insert " << i << ": " << id.status().ToString();
  } else if (roll < 70) {
    const NodeId v = PickLive(*store, rng);
    if (v == 0 || !SubtreeCapped(t, v, 16)) return;
    const Result<std::vector<NodeId>> gone = store->DeleteSubtree(v);
    ASSERT_TRUE(gone.ok()) << "delete " << i << ": "
                           << gone.status().ToString();
  } else if (roll < 90) {
    const NodeId v = PickLive(*store, rng);
    const NodeId parent = PickLive(*store, rng);
    if (v == 0) return;
    for (NodeId a = parent; a != kInvalidNode; a = t.Parent(a)) {
      if (a == v) return;
    }
    NodeId before = kInvalidNode;
    if (t.ChildCount(parent) > 0 && rng->NextBool(0.5)) {
      const std::vector<NodeId> kids = t.Children(parent);
      before = kids[rng->NextBounded(kids.size())];
      if (before == v) before = kInvalidNode;
    }
    const Status moved = store->MoveSubtree(v, parent, before);
    ASSERT_TRUE(moved.ok()) << "move " << i << ": " << moved.ToString();
  } else {
    const Status renamed =
        store->Rename(PickLive(*store, rng), kLabels[rng->NextBounded(4)]);
    ASSERT_TRUE(renamed.ok()) << "rename " << i << ": " << renamed.ToString();
  }
}

TEST(StoreDeleteTest, DeleteLeafTombstonesWithoutShrinkingIdSpace) {
  NatixStore store = BuildStore(ImportScaled(0.003, 256), 256);
  const Tree& t = store.tree();
  NodeId leaf = kInvalidNode;
  for (NodeId v = 1; v < t.size(); ++v) {
    if (t.ChildCount(v) == 0) {
      leaf = v;
      break;
    }
  }
  ASSERT_NE(leaf, kInvalidNode);
  const size_t nodes_before = store.node_count();
  const size_t live_before = store.live_node_count();
  const Result<std::vector<NodeId>> gone = store.DeleteSubtree(leaf);
  ASSERT_TRUE(gone.ok()) << gone.status().ToString();
  EXPECT_EQ(*gone, std::vector<NodeId>{leaf});
  EXPECT_FALSE(store.IsLiveNode(leaf));
  EXPECT_EQ(store.node_count(), nodes_before);  // ids are never recycled
  EXPECT_EQ(store.live_node_count(), live_before - 1);
  EXPECT_EQ(store.update_stats().deletes, 1u);
  ASSERT_NE(store.partitioner(), nullptr);
  EXPECT_TRUE(store.partitioner()->Validate().ok());
  ExpectQueriesMatchReference(store, "after leaf delete");
}

TEST(StoreDeleteTest, DeleteSubtreeRemovesEveryDescendant) {
  NatixStore store = BuildStore(ImportScaled(0.003, 256), 256);
  const Tree& t = store.tree();
  // Pick an internal node with a few descendants.
  NodeId v = kInvalidNode;
  for (NodeId u = 1; u < t.size(); ++u) {
    if (t.ChildCount(u) >= 2 && SubtreeCapped(t, u, 32)) {
      v = u;
      break;
    }
  }
  ASSERT_NE(v, kInvalidNode);
  const std::vector<NodeId> expected = t.SubtreeNodes(v);
  ASSERT_GT(expected.size(), 2u);
  const size_t live_before = store.live_node_count();
  const Result<std::vector<NodeId>> gone = store.DeleteSubtree(v);
  ASSERT_TRUE(gone.ok()) << gone.status().ToString();
  EXPECT_EQ(*gone, expected);
  for (const NodeId u : expected) EXPECT_FALSE(store.IsLiveNode(u));
  EXPECT_EQ(store.live_node_count(), live_before - expected.size());
  ASSERT_NE(store.partitioner(), nullptr);
  EXPECT_TRUE(store.partitioner()->Validate().ok());
  ExpectQueriesMatchReference(store, "after subtree delete");
}

TEST(StoreDeleteTest, RejectsRootAndDeadNodes) {
  NatixStore store = BuildStore(ImportScaled(0.003, 256), 256);
  EXPECT_FALSE(store.DeleteSubtree(store.tree().root()).ok());
  EXPECT_FALSE(store.DeleteSubtree(static_cast<NodeId>(1u << 30)).ok());
  NodeId leaf = kInvalidNode;
  for (NodeId v = 1; v < store.tree().size(); ++v) {
    if (store.tree().ChildCount(v) == 0) {
      leaf = v;
      break;
    }
  }
  ASSERT_TRUE(store.DeleteSubtree(leaf).ok());
  // Double delete is rejected: the node is already a tombstone.
  EXPECT_FALSE(store.DeleteSubtree(leaf).ok());
}

TEST(StoreDeleteTest, DeletesDriveNeighbourMergesAndKeepInvariants) {
  constexpr TotalWeight kSmall = 64;
  NatixStore store = BuildStore(ImportScaled(0.01, kSmall), kSmall);
  Rng rng(23);
  // Random leaf-biased deletes drive partitions below the half-limit
  // utilization threshold, which must trigger neighbour merges.
  int deleted = 0;
  for (int i = 0; i < 4000 && deleted < 1500; ++i) {
    const NodeId v = PickLive(store, &rng);
    if (v == 0 || !SubtreeCapped(store.tree(), v, 4)) continue;
    ASSERT_TRUE(store.DeleteSubtree(v).ok()) << "delete " << i;
    ++deleted;
  }
  const UpdateStats us = store.update_stats();
  EXPECT_GT(us.merges, 0u) << "deletes never merged a partition";
  ASSERT_NE(store.partitioner(), nullptr);
  const IncrementalPartitioner* ip = store.partitioner();
  // The weight invariant holds partition by partition, and merged
  // intervals account for every live node exactly once.
  EXPECT_TRUE(ip->Validate().ok());
  // Every alive interval respects the weight limit, and dead (merged or
  // retired) interval slots carry no nodes.
  size_t covered = 0;
  for (uint32_t i = 0; i < ip->interval_count(); ++i) {
    const IncrementalPartitioner::IntervalInfo iv = ip->interval(i);
    if (!iv.alive) continue;
    EXPECT_LE(iv.weight, static_cast<TotalWeight>(kSmall))
        << "interval " << i << " exceeds the limit after merging";
    EXPECT_GT(iv.weight, 0u) << "interval " << i << " is empty but alive";
    covered += ip->PartitionNodes(i).size();
  }
  EXPECT_EQ(covered, store.live_node_count());
  // CurrentPartitioning stays in canonical document order after the
  // delete/merge churn.
  const Partitioning p = ip->CurrentPartitioning();
  const std::vector<uint32_t> rank = store.tree().PreorderRanks();
  for (size_t i = 1; i < p.size(); ++i) {
    EXPECT_LT(rank[p[i - 1].first], rank[p[i].first])
        << "intervals " << (i - 1) << " and " << i
        << " are out of document order";
  }
  ExpectQueriesMatchReference(store, "after delete/merge churn");
}

TEST(StoreMoveTest, MoveSubtreeSplicesWithoutReimportingBytes) {
  NatixStore store = BuildStore(ImportScaled(0.003, 256), 256);
  const Tree& t = store.tree();
  NodeId v = kInvalidNode;
  for (NodeId u = 1; u < t.size(); ++u) {
    if (t.ChildCount(u) >= 1 && SubtreeCapped(t, u, 16)) {
      v = u;
      break;
    }
  }
  ASSERT_NE(v, kInvalidNode);
  // New parent: the root (guaranteed outside v's subtree for v != root's
  // only child chain picked above).
  const NodeId root = t.root();
  ASSERT_TRUE(store.MoveSubtree(v, root, kInvalidNode).ok());
  EXPECT_EQ(store.tree().Parent(v), root);
  EXPECT_EQ(store.tree().LastChild(root), v);
  EXPECT_EQ(store.update_stats().moves, 1u);
  ASSERT_NE(store.partitioner(), nullptr);
  EXPECT_TRUE(store.partitioner()->Validate().ok());
  ExpectQueriesMatchReference(store, "after move to root");
}

TEST(StoreMoveTest, RejectsCyclesAndRoot) {
  NatixStore store = BuildStore(ImportScaled(0.003, 256), 256);
  const Tree& t = store.tree();
  NodeId v = kInvalidNode;
  for (NodeId u = 1; u < t.size(); ++u) {
    if (t.ChildCount(u) >= 1) {
      v = u;
      break;
    }
  }
  ASSERT_NE(v, kInvalidNode);
  const NodeId child = t.FirstChild(v);
  // Moving the root, moving under a descendant, and moving under itself
  // are all rejected without mutating anything.
  EXPECT_FALSE(store.MoveSubtree(t.root(), v, kInvalidNode).ok());
  EXPECT_FALSE(store.MoveSubtree(v, child, kInvalidNode).ok());
  EXPECT_FALSE(store.MoveSubtree(v, v, kInvalidNode).ok());
  EXPECT_EQ(store.update_stats().moves, 0u);
  if (store.partitioner() != nullptr) {
    EXPECT_TRUE(store.partitioner()->Validate().ok());
  }
}

TEST(StoreRenameTest, RenameRewritesTheLabelInPlace) {
  NatixStore store = BuildStore(ImportScaled(0.003, 256), 256);
  const Tree& t = store.tree();
  NodeId v = kInvalidNode;
  for (NodeId u = 1; u < t.size(); ++u) {
    if (t.KindOf(u) == NodeKind::kElement) {
      v = u;
      break;
    }
  }
  ASSERT_NE(v, kInvalidNode);
  // A brand-new label must be interned and the record patched in place.
  ASSERT_TRUE(store.Rename(v, "renamed_to_something_new").ok());
  EXPECT_EQ(store.tree().LabelOf(v), "renamed_to_something_new");
  EXPECT_EQ(store.update_stats().renames, 1u);
  // The record bytes agree: decode the containing record and check the
  // slot's label id resolves to the new name.
  const uint32_t part = store.PartitionOf(v);
  const auto bytes = store.RecordBytes(part);
  ASSERT_TRUE(bytes.ok());
  const Result<DecodedRecord> rec = DecodeRecord(bytes->first, bytes->second);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  bool found = false;
  for (const RecordNode& n : rec->nodes) {
    if (n.node == v) {
      found = true;
      EXPECT_EQ(store.LabelNameOf(n.label), "renamed_to_something_new");
    }
  }
  EXPECT_TRUE(found);
  ExpectQueriesMatchReference(store, "after rename");
}

TEST(StoreRenameTest, RenameSweepStaysQueryCorrect) {
  NatixStore store = BuildStore(ImportScaled(0.005, 256), 256);
  Rng rng(31);
  static constexpr const char* kNames[] = {"alpha", "a_rather_long_label",
                                           "z", "mid"};
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(
        store.Rename(PickLive(store, &rng), kNames[rng.NextBounded(4)]).ok())
        << "rename " << i;
  }
  EXPECT_EQ(store.update_stats().renames, 300u);
  // A pure rename stream never changes partition structure, so the
  // incremental partitioner is not even instantiated.
  if (store.partitioner() != nullptr) {
    EXPECT_TRUE(store.partitioner()->Validate().ok());
  }
  ExpectQueriesMatchReference(store, "after rename sweep");
}

TEST(StoreCompactTest, CompactSnapshotDropsTombstonesAndMapsLiveNodes) {
  NatixStore store = BuildStore(ImportScaled(0.003, 256), 256);
  Rng rng(41);
  for (int i = 0; i < 50; ++i) {
    const NodeId v = PickLive(store, &rng);
    if (v == 0 || !SubtreeCapped(store.tree(), v, 8)) continue;
    ASSERT_TRUE(store.DeleteSubtree(v).ok());
  }
  ASSERT_GT(store.update_stats().deletes, 0u);
  std::vector<NodeId> old_to_new;
  Result<ImportedDocument> compact = store.CompactSnapshot(&old_to_new);
  ASSERT_TRUE(compact.ok()) << compact.status().ToString();
  EXPECT_EQ(compact->tree.size(), store.live_node_count());
  ASSERT_EQ(old_to_new.size(), store.node_count());
  for (NodeId v = 0; v < store.node_count(); ++v) {
    if (store.IsLiveNode(v)) {
      ASSERT_NE(old_to_new[v], kInvalidNode) << "live node " << v
                                             << " unmapped";
      EXPECT_EQ(compact->tree.LabelOf(old_to_new[v]),
                store.tree().LabelOf(v));
      EXPECT_EQ(compact->tree.KindOf(old_to_new[v]), store.tree().KindOf(v));
    } else {
      EXPECT_EQ(old_to_new[v], kInvalidNode) << "tombstone " << v
                                             << " mapped";
    }
  }
  // The compacted document is a clean import: it must bulkload.
  const Result<Partitioning> p = EkmPartition(compact->tree, 256);
  ASSERT_TRUE(p.ok());
  const Result<NatixStore> fresh =
      NatixStore::Build(std::move(compact).value(), *p, 256);
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
}

TEST(StoreMixedTest, TenThousandMixedOpsMatchFreshBuildThroughWal) {
  constexpr TotalWeight kLimit = 256;
  NatixStore store = BuildStore(ImportScaled(0.01, kLimit), kLimit);
  auto backend = std::make_unique<MemoryFileBackend>();
  const std::shared_ptr<MemoryFileBackend::Bytes> disk = backend->disk();
  ASSERT_TRUE(store.EnableDurability(std::move(backend)).ok());

  const size_t size_floor = store.live_node_count();
  Rng rng(99);
  constexpr int kTotal = 10000;
  constexpr int kChunk = 2500;
  for (int done = 0; done < kTotal; done += kChunk) {
    for (int i = 0; i < kChunk; ++i) {
      ASSERT_NO_FATAL_FAILURE(RandomMixedOp(&store, done + i, size_floor,
                                            &rng));
    }
    ASSERT_NE(store.partitioner(), nullptr);
    ASSERT_TRUE(store.partitioner()->Validate().ok())
        << "after " << (done + kChunk) << " ops";
    // Queries must be correct *mid-stream*, not only at the end.
    ExpectQueriesMatchReference(
        store, "after " + std::to_string(done + kChunk) + " ops");
    // One checkpoint mid-stream: recovery restores it and replays the
    // second half of the op stream through the mixed replay path.
    if (done + kChunk == kTotal / 2) {
      ASSERT_TRUE(store.Checkpoint().ok());
    }
  }
  const UpdateStats us = store.update_stats();
  EXPECT_GT(us.deletes, 0u);
  EXPECT_GT(us.moves, 0u);
  EXPECT_GT(us.renames, 0u);
  EXPECT_GT(us.merges, 0u);

  // Crash; the tail past the mid-stream checkpoint replays through the
  // same insert/delete/move/rename paths.
  const size_t records_before_crash = store.record_count();
  const size_t live_before_crash = store.live_node_count();
  store = BuildStore(ImportScaled(0.003, kLimit), kLimit);
  Result<NatixStore> recovered =
      NatixStore::Recover(std::make_unique<MemoryFileBackend>(disk));
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  const UpdateStats rs = recovered->update_stats();
  EXPECT_EQ(rs.inserts, us.inserts);
  EXPECT_EQ(rs.deletes, us.deletes);
  EXPECT_EQ(rs.moves, us.moves);
  EXPECT_EQ(rs.renames, us.renames);
  EXPECT_EQ(recovered->record_count(), records_before_crash);
  EXPECT_EQ(recovered->live_node_count(), live_before_crash);
  ASSERT_NE(recovered->partitioner(), nullptr);
  ASSERT_TRUE(recovered->partitioner()->Validate().ok());
  ExpectQueriesMatchReference(*recovered, "after recovery");

  // Oracle: a fresh bulkload of the compacted final document must answer
  // every XPathMark query byte-equivalently through the compaction map.
  std::vector<NodeId> old_to_new;
  Result<ImportedDocument> snapshot = recovered->CompactSnapshot(&old_to_new);
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  const Result<Partitioning> fresh_p = EkmPartition(snapshot->tree, kLimit);
  ASSERT_TRUE(fresh_p.ok());
  const Result<NatixStore> fresh =
      NatixStore::Build(std::move(snapshot).value(), *fresh_p, kLimit);
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();

  AccessStats grown_stats, fresh_stats;
  StoreQueryEvaluator grown_eval(&*recovered, &grown_stats);
  StoreQueryEvaluator fresh_eval(&*fresh, &fresh_stats);
  for (const XPathMarkQuery& q : XPathMarkQueries()) {
    const Result<PathExpr> path = ParseXPath(q.text);
    ASSERT_TRUE(path.ok()) << q.id;
    Result<std::vector<NodeId>> grown_r = grown_eval.Evaluate(*path);
    const Result<std::vector<NodeId>> fresh_r = fresh_eval.Evaluate(*path);
    ASSERT_TRUE(grown_r.ok() && fresh_r.ok()) << q.id;
    for (NodeId& v : *grown_r) v = old_to_new[v];
    EXPECT_EQ(*grown_r, *fresh_r) << q.id;
  }
}

TEST(StoreUpdateTest, CurrentPartitioningIsCanonicallyOrdered) {
  NatixStore store = BuildStore(ImportScaled(0.005, 64), 64);
  Rng rng(7);
  RandomInserts(&store, 500, &rng);
  ASSERT_NE(store.partitioner(), nullptr);
  const Partitioning p = store.partitioner()->CurrentPartitioning();
  const std::vector<uint32_t> rank = store.tree().PreorderRanks();
  for (size_t i = 1; i < p.size(); ++i) {
    EXPECT_LT(rank[p[i - 1].first], rank[p[i].first])
        << "intervals " << (i - 1) << " and " << i
        << " are out of document order";
  }
}

}  // namespace
}  // namespace natix
