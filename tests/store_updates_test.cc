#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "core/heuristics.h"
#include "datagen/generator.h"
#include "query/parser.h"
#include "query/reference_evaluator.h"
#include "query/evaluator.h"
#include "query/xpathmark.h"
#include "storage/record.h"
#include "storage/record_manager.h"
#include "storage/store.h"
#include "xml/importer.h"

namespace natix {
namespace {

// ------------------------------------------- record manager mutation ----

TEST(RecordManagerUpdateTest, FreeRecyclesIdsAndSpace) {
  RecordManager mgr(1024);
  const RecordId a = *mgr.Insert(std::vector<uint8_t>(200, 1));
  const RecordId b = *mgr.Insert(std::vector<uint8_t>(200, 2));
  ASSERT_TRUE(mgr.Free(a).ok());
  EXPECT_EQ(mgr.record_count(), 1u);
  EXPECT_EQ(mgr.free_count(), 1u);
  EXPECT_FALSE(mgr.Get(a).ok());
  // Double free is rejected.
  EXPECT_FALSE(mgr.Free(a).ok());
  // The freed logical id and its page space are both recycled.
  const RecordId c = *mgr.Insert(std::vector<uint8_t>(200, 3));
  EXPECT_EQ(c.value, a.value);
  EXPECT_EQ(mgr.page_count(), 1u);
  const auto got_b = mgr.Get(b);
  ASSERT_TRUE(got_b.ok());
  EXPECT_EQ(got_b->first[0], 2);
}

TEST(RecordManagerUpdateTest, ShrinkingUpdateStaysInPlace) {
  RecordManager mgr(1024);
  const RecordId id = *mgr.Insert(std::vector<uint8_t>(400, 1));
  const uint32_t page = mgr.PageOf(id);
  ASSERT_TRUE(mgr.Update(id, std::vector<uint8_t>(100, 2)).ok());
  EXPECT_EQ(mgr.PageOf(id), page);
  EXPECT_EQ(mgr.relocation_count(), 0u);
  EXPECT_EQ(mgr.payload_bytes(), 100u);
  const auto got = mgr.Get(id);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->second, 100u);
  EXPECT_EQ(got->first[0], 2);
}

TEST(RecordManagerUpdateTest, GrowingUpdateRelocates) {
  RecordManager mgr(1024, /*lookback=*/1);
  const RecordId grower = *mgr.Insert(std::vector<uint8_t>(400, 1));
  const RecordId neighbor = *mgr.Insert(std::vector<uint8_t>(500, 2));
  const uint32_t page = mgr.PageOf(grower);
  EXPECT_EQ(page, mgr.PageOf(neighbor));
  // 900 bytes no longer fit next to the neighbor: the record must move,
  // while its id stays valid.
  ASSERT_TRUE(mgr.Update(grower, std::vector<uint8_t>(900, 3)).ok());
  EXPECT_EQ(mgr.relocation_count(), 1u);
  EXPECT_NE(mgr.PageOf(grower), page);
  const auto got = mgr.Get(grower);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->second, 900u);
  EXPECT_EQ(got->first[0], 3);
  // The neighbor is untouched.
  const auto got_n = mgr.Get(neighbor);
  ASSERT_TRUE(got_n.ok());
  EXPECT_EQ(got_n->second, 500u);
  EXPECT_EQ(got_n->first[0], 2);
}

TEST(RecordManagerUpdateTest, UpdateCrossesJumboBoundaryBothWays) {
  RecordManager mgr(512);
  const RecordId id = *mgr.Insert(std::vector<uint8_t>(100, 1));
  EXPECT_FALSE(mgr.IsJumbo(id));
  // Grow past one page: becomes jumbo.
  ASSERT_TRUE(mgr.Update(id, std::vector<uint8_t>(2000, 2)).ok());
  EXPECT_TRUE(mgr.IsJumbo(id));
  EXPECT_EQ(mgr.jumbo_record_count(), 1u);
  EXPECT_EQ(mgr.Get(id)->second, 2000u);
  // Shrink back below a page: returns to slotted storage.
  ASSERT_TRUE(mgr.Update(id, std::vector<uint8_t>(50, 3)).ok());
  EXPECT_FALSE(mgr.IsJumbo(id));
  EXPECT_EQ(mgr.jumbo_record_count(), 0u);
  const auto got = mgr.Get(id);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->second, 50u);
  EXPECT_EQ(got->first[0], 3);
}

TEST(RecordManagerUpdateTest, FreedSpaceFoundBeyondLookback) {
  // Lookback 1 cannot see page 0 once page 1 exists; the reuse-candidate
  // stack must still route a fitting record back to the freed space.
  RecordManager mgr(1024, /*lookback=*/1);
  const RecordId a = *mgr.Insert(std::vector<uint8_t>(900, 1));
  ASSERT_TRUE(mgr.Insert(std::vector<uint8_t>(900, 2)).ok());
  ASSERT_TRUE(mgr.Insert(std::vector<uint8_t>(900, 3)).ok());
  EXPECT_EQ(mgr.page_count(), 3u);
  ASSERT_TRUE(mgr.Free(a).ok());
  const RecordId d = *mgr.Insert(std::vector<uint8_t>(800, 4));
  EXPECT_EQ(mgr.page_count(), 3u);
  EXPECT_EQ(mgr.PageOf(d), 0u);
}

TEST(PageUpdateTest, CompactionReclaimsHoles) {
  Page page(1024);
  const uint16_t s0 = *page.Insert(std::vector<uint8_t>(300, 1));
  const uint16_t s1 = *page.Insert(std::vector<uint8_t>(300, 2));
  const uint16_t s2 = *page.Insert(std::vector<uint8_t>(300, 3));
  ASSERT_TRUE(page.Free(s1).ok());
  // 300 freed + a ~90-byte tail: a 350-byte record fits only after
  // compaction slides s2 left.
  const Result<uint16_t> s3 = page.Insert(std::vector<uint8_t>(350, 4));
  ASSERT_TRUE(s3.ok());
  EXPECT_EQ(*s3, s1);  // tombstoned slot is reused
  EXPECT_GE(page.compaction_count(), 1u);
  // Survivors kept their slots and bytes.
  EXPECT_EQ(page.Get(s0)->first[0], 1);
  EXPECT_EQ(page.Get(s2)->first[0], 3);
  EXPECT_EQ(page.Get(*s3)->first[0], 4);
}

// ------------------------------------------------------ store inserts ----

ImportedDocument ImportScaled(double scale, uint32_t max_node_slots) {
  WeightModel model;
  model.max_node_slots = max_node_slots;
  Result<ImportedDocument> imp = ImportXml(GenerateXmark(5, scale), model);
  EXPECT_TRUE(imp.ok()) << imp.status().ToString();
  return std::move(imp).value();
}

NatixStore BuildStore(ImportedDocument doc, TotalWeight limit) {
  Result<Partitioning> p = EkmPartition(doc.tree, limit);
  EXPECT_TRUE(p.ok());
  Result<NatixStore> store = NatixStore::Build(std::move(doc), *p, limit);
  EXPECT_TRUE(store.ok()) << store.status().ToString();
  return std::move(store).value();
}

/// Runs every XPathMark query against `store` and the reference tree
/// evaluator; both must agree node for node.
void ExpectQueriesMatchReference(const NatixStore& store,
                                 const std::string& context) {
  AccessStats stats;
  StoreQueryEvaluator eval(&store, &stats);
  for (const XPathMarkQuery& q : XPathMarkQueries()) {
    const Result<PathExpr> path = ParseXPath(q.text);
    ASSERT_TRUE(path.ok()) << q.id;
    const Result<std::vector<NodeId>> got = eval.Evaluate(*path);
    const Result<std::vector<NodeId>> want =
        EvaluateOnTree(store.tree(), *path);
    ASSERT_TRUE(got.ok() && want.ok()) << context << " " << q.id;
    EXPECT_EQ(*got, *want) << context << " " << q.id;
  }
}

/// Applies `count` randomized inserts (random parent/position, small
/// random content) through the store.
void RandomInserts(NatixStore* store, int count, Rng* rng) {
  static constexpr const char* kLabels[] = {"item", "note", "entry", "x"};
  for (int i = 0; i < count; ++i) {
    const Tree& t = store->tree();
    const NodeId parent = static_cast<NodeId>(rng->NextBounded(t.size()));
    NodeId before = kInvalidNode;
    if (t.ChildCount(parent) > 0 && rng->NextBool(0.4)) {
      const std::vector<NodeId> kids = t.Children(parent);
      before = kids[rng->NextBounded(kids.size())];
    }
    const bool text = rng->NextBool(0.5);
    std::string content;
    if (text) content.assign(1 + rng->NextBounded(40), 'a' + i % 26);
    const Result<NodeId> id = store->InsertBefore(
        parent, before, text ? "" : kLabels[rng->NextBounded(4)],
        text ? NodeKind::kText : NodeKind::kElement, content);
    ASSERT_TRUE(id.ok()) << "insert " << i << ": " << id.status().ToString();
  }
}

TEST(StoreUpdateTest, InsertAppendsNodeAndRewritesOneRecord) {
  NatixStore store = BuildStore(ImportScaled(0.003, 256), 256);
  const size_t records_before = store.record_count();
  const NodeId root = store.tree().root();
  const Result<NodeId> id =
      store.InsertBefore(root, kInvalidNode, "fresh");
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(store.tree().Parent(*id), root);
  EXPECT_TRUE(store.RecordOfNode(*id).valid());
  const UpdateStats stats = store.update_stats();
  EXPECT_EQ(stats.inserts, 1u);
  // Without a split the containing record is rewritten, plus the left
  // sibling's record when that sibling lives elsewhere: its next-sibling
  // edge now names the new node and records are self-describing.
  EXPECT_EQ(stats.splits, 0u);
  const NodeId left = store.tree().PrevSibling(*id);
  const size_t expected_rewrites =
      left != kInvalidNode && !(store.RecordOfNode(left) ==
                                store.RecordOfNode(*id))
          ? 2u
          : 1u;
  EXPECT_EQ(stats.records_rewritten, expected_rewrites);
  EXPECT_EQ(store.record_count(), records_before);
}

TEST(StoreUpdateTest, RepeatedInsertsForceRecordSplit) {
  NatixStore store = BuildStore(ImportScaled(0.003, 64), 64);
  const size_t records_before = store.record_count();
  const NodeId root = store.tree().root();
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(
        store.InsertBefore(root, kInvalidNode, "bulk").ok());
  }
  const UpdateStats stats = store.update_stats();
  EXPECT_GT(stats.splits, 0u);
  EXPECT_GT(stats.records_created, 0u);
  EXPECT_GT(store.record_count(), records_before);
  ASSERT_NE(store.partitioner(), nullptr);
  EXPECT_TRUE(store.partitioner()->Validate().ok());
  ExpectQueriesMatchReference(store, "after append burst");
}

TEST(StoreUpdateTest, InsertedContentRoundTrips) {
  NatixStore store = BuildStore(ImportScaled(0.003, 256), 256);
  const NodeId root = store.tree().root();
  const Result<NodeId> id = store.InsertBefore(
      root, kInvalidNode, "", NodeKind::kText, "hello, mutable store");
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(store.document().ContentOf(*id), "hello, mutable store");
  // The node made it into its partition's record with inline content.
  const uint32_t part = store.PartitionOf(*id);
  const auto bytes = store.RecordBytes(part);
  ASSERT_TRUE(bytes.ok());
  const Result<DecodedRecord> rec =
      DecodeRecord(bytes->first, bytes->second);
  ASSERT_TRUE(rec.ok());
  bool found = false;
  for (const RecordNode& n : rec->nodes) {
    if (n.node == *id) {
      found = true;
      // Decoded content is slot-aligned: 20 bytes round up to 3 slots.
      EXPECT_EQ(n.content_bytes, 24u);
      EXPECT_FALSE(n.overflow);
    }
  }
  EXPECT_TRUE(found);
}

TEST(StoreUpdateTest, OversizedContentExternalizes) {
  NatixStore store = BuildStore(ImportScaled(0.003, 256), 256);
  const size_t overflow_before = store.overflow_page_count();
  const std::string huge(100000, 'x');
  const Result<NodeId> id = store.InsertBefore(
      store.tree().root(), kInvalidNode, "", NodeKind::kText, huge);
  ASSERT_TRUE(id.ok());
  EXPECT_GT(store.overflow_page_count(), overflow_before);
  ASSERT_NE(store.partitioner(), nullptr);
  EXPECT_TRUE(store.partitioner()->Validate().ok());
}

TEST(StoreUpdateTest, TenThousandRandomInsertsStayQueryCorrect) {
  constexpr TotalWeight kLimit = 256;
  NatixStore store = BuildStore(ImportScaled(0.02, kLimit), kLimit);
  Rng rng(99);
  constexpr int kTotal = 10000;
  constexpr int kChunk = 2500;
  for (int done = 0; done < kTotal; done += kChunk) {
    RandomInserts(&store, kChunk, &rng);
    ASSERT_NE(store.partitioner(), nullptr);
    ASSERT_TRUE(store.partitioner()->Validate().ok())
        << "after " << (done + kChunk) << " inserts";
    // Queries must be correct *mid-stream*, not only at the end.
    ExpectQueriesMatchReference(
        store, "after " + std::to_string(done + kChunk) + " inserts");
  }

  const UpdateStats stats = store.update_stats();
  EXPECT_EQ(stats.inserts, static_cast<uint64_t>(kTotal));
  // Per-insert work is proportional to the partitions touched: across a
  // random workload that averages a small constant, far below the
  // thousands of records the store holds.
  const uint64_t touched = stats.records_rewritten + stats.records_created;
  EXPECT_LT(touched, static_cast<uint64_t>(kTotal) * 4);
  EXPECT_GT(store.record_count(), 0u);

  // Equivalence: a fresh bulkload of the final document must answer every
  // query identically (same NodeIds -- the snapshot preserves them).
  Result<ImportedDocument> snapshot_r = store.SnapshotDocument();
  ASSERT_TRUE(snapshot_r.ok()) << snapshot_r.status().ToString();
  ImportedDocument snapshot = std::move(snapshot_r).value();
  const Result<Partitioning> fresh_p = EkmPartition(snapshot.tree, kLimit);
  ASSERT_TRUE(fresh_p.ok());
  const Result<NatixStore> fresh =
      NatixStore::Build(std::move(snapshot), *fresh_p, kLimit);
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();

  AccessStats grown_stats, fresh_stats;
  StoreQueryEvaluator grown_eval(&store, &grown_stats);
  StoreQueryEvaluator fresh_eval(&*fresh, &fresh_stats);
  for (const XPathMarkQuery& q : XPathMarkQueries()) {
    const Result<PathExpr> path = ParseXPath(q.text);
    ASSERT_TRUE(path.ok()) << q.id;
    const Result<std::vector<NodeId>> grown_r = grown_eval.Evaluate(*path);
    const Result<std::vector<NodeId>> fresh_r = fresh_eval.Evaluate(*path);
    ASSERT_TRUE(grown_r.ok() && fresh_r.ok()) << q.id;
    EXPECT_EQ(*grown_r, *fresh_r) << q.id;
  }
}

TEST(StoreUpdateTest, CurrentPartitioningIsCanonicallyOrdered) {
  NatixStore store = BuildStore(ImportScaled(0.005, 64), 64);
  Rng rng(7);
  RandomInserts(&store, 500, &rng);
  ASSERT_NE(store.partitioner(), nullptr);
  const Partitioning p = store.partitioner()->CurrentPartitioning();
  const std::vector<uint32_t> rank = store.tree().PreorderRanks();
  for (size_t i = 1; i < p.size(); ++i) {
    EXPECT_LT(rank[p[i - 1].first], rank[p[i].first])
        << "intervals " << (i - 1) << " and " << i
        << " are out of document order";
  }
}

}  // namespace
}  // namespace natix
