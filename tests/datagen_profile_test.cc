// Structural-profile locks for the corpus generators: the substitution
// argument in DESIGN.md rests on each synthetic document reproducing the
// *regime* of its original (flat relational vs. shallow records vs.
// nested), so those regimes are asserted here and will fail loudly if a
// generator change drifts.
#include <gtest/gtest.h>

#include "datagen/generator.h"
#include "tree/tree_stats.h"
#include "xml/importer.h"

namespace natix {
namespace {

TreeStats StatsFor(std::string_view generator, double scale = 0.1) {
  const Result<std::string> xml = GenerateDocument(generator, 42, scale);
  EXPECT_TRUE(xml.ok());
  const Result<ImportedDocument> imp = ImportXml(*xml, WeightModel());
  EXPECT_TRUE(imp.ok());
  return ComputeTreeStats(imp->tree);
}

TEST(DatagenProfileTest, PartsuppIsFlatTuples) {
  const TreeStats s = StatsFor("partsupp");
  // root -> T -> column -> text: constant height 3.
  EXPECT_EQ(s.height, 3);
  // One wide root; every tuple has the same 5 columns.
  EXPECT_GT(s.max_fanout, 500u);
  EXPECT_EQ(s.kind_counts[static_cast<int>(NodeKind::kAttribute)], 0u);
}

TEST(DatagenProfileTest, OrdersIsFlatTuples) {
  const TreeStats s = StatsFor("orders");
  EXPECT_EQ(s.height, 3);
  EXPECT_GT(s.max_fanout, 1000u);
}

TEST(DatagenProfileTest, SigmodIsShallowRecords) {
  const TreeStats s = StatsFor("sigmod");
  EXPECT_GE(s.height, 5);
  EXPECT_LE(s.height, 7);
  // Attribute-bearing author elements exist.
  EXPECT_GT(s.kind_counts[static_cast<int>(NodeKind::kAttribute)], 0u);
}

TEST(DatagenProfileTest, MondialIsNestedAndAttributeHeavy) {
  const TreeStats s = StatsFor("mondial");
  EXPECT_GE(s.height, 4);
  // Roughly a third of the nodes are attributes (the original mondial's
  // signature trait).
  const double attr_share =
      static_cast<double>(s.kind_counts[static_cast<int>(
          NodeKind::kAttribute)]) /
      static_cast<double>(s.node_count);
  EXPECT_GT(attr_share, 0.2);
  EXPECT_LT(attr_share, 0.5);
}

TEST(DatagenProfileTest, UwmIsManySmallRecords) {
  const TreeStats s = StatsFor("uwm");
  EXPECT_GE(s.height, 4);
  EXPECT_LE(s.height, 6);
  // Course listings are small: average fanout of inner nodes stays low.
  EXPECT_LT(s.avg_fanout, 6.0);
}

TEST(DatagenProfileTest, XmarkIsDeepAndMixed) {
  const TreeStats s = StatsFor("xmark");
  EXPECT_GE(s.height, 8);  // nested parlists under closed auctions
  // Mixed content: plenty of text nodes.
  const double text_share =
      static_cast<double>(
          s.kind_counts[static_cast<int>(NodeKind::kText)]) /
      static_cast<double>(s.node_count);
  EXPECT_GT(text_share, 0.25);
}

TEST(DatagenProfileTest, WeightsFollowSlotModel) {
  // Every node weight is 1 (elements) or 1 + ceil(len/8) (text/attrs).
  const Result<std::string> xml = GenerateDocument("sigmod", 42, 0.05);
  ASSERT_TRUE(xml.ok());
  const Result<ImportedDocument> imp = ImportXml(*xml, WeightModel());
  ASSERT_TRUE(imp.ok());
  for (NodeId v = 0; v < imp->tree.size(); ++v) {
    const uint32_t len = imp->content_bytes[v];
    EXPECT_EQ(imp->tree.WeightOf(v), 1 + (len + 7) / 8) << v;
    if (imp->tree.KindOf(v) == NodeKind::kElement) EXPECT_EQ(len, 0u);
  }
}

TEST(DatagenProfileTest, ScaleIsApproximatelyLinear) {
  for (const char* name : {"partsupp", "xmark"}) {
    const TreeStats s1 = StatsFor(name, 0.05);
    const TreeStats s2 = StatsFor(name, 0.10);
    const double ratio =
        static_cast<double>(s2.node_count) / static_cast<double>(s1.node_count);
    EXPECT_GT(ratio, 1.7) << name;
    EXPECT_LT(ratio, 2.3) << name;
  }
}

}  // namespace
}  // namespace natix
