// Cross-validation of the production DP engine against a naive
// re-implementation of the paper's pseudocode (Figs. 4/7): full table
// over every s in [w(t), K], no memoization, no Fenwick trees, nearly-
// optimal switch sets recomputed by sorting at every candidate. The two
// implementations share no code; minimal cardinality and lean root weight
// must agree on every random instance.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "core/flat_dp.h"

namespace natix {
namespace {

struct NaiveEntry {
  uint32_t card = std::numeric_limits<uint32_t>::max();
  uint32_t rootweight = 0;
};

// Full-table DP, directly following Fig. 7 (Fig. 4 is the delta_w == 0
// special case).
NaiveEntry NaiveDp(Weight node_weight, const std::vector<Weight>& cw,
                   const std::vector<Weight>& dw, uint32_t limit) {
  const size_t n = cw.size();
  // D[s][j]; s in [0, limit].
  std::vector<std::vector<NaiveEntry>> table(
      limit + 1, std::vector<NaiveEntry>(n + 1));
  for (uint32_t s = node_weight; s <= limit; ++s) {
    table[s][0] = {0, s};
  }
  for (size_t j = 1; j <= n; ++j) {
    for (uint32_t s = node_weight; s <= limit; ++s) {
      NaiveEntry best;
      // Candidate 1: c_j joins the root partition.
      const uint64_t s2 = static_cast<uint64_t>(s) + cw[j - 1];
      if (s2 <= limit) best = table[s2][j - 1];
      // Candidate 2: interval (c_{j-m}, c_j).
      uint64_t w = 0;
      uint64_t dsum = 0;
      for (size_t m = 0; m < j && m < limit; ++m) {
        if (w - dsum >= limit) break;
        const size_t left = j - 1 - m;
        w += cw[left];
        dsum += dw[left];
        if (w - dsum > limit) continue;
        const NaiveEntry& base = table[s][left];
        if (base.card == std::numeric_limits<uint32_t>::max()) continue;
        uint32_t crd = base.card + 1;
        if (w > limit) {
          // Greedy switch count by explicit sorting (Lemma 5).
          std::vector<Weight> deltas;
          for (size_t i = left; i < j; ++i) {
            if (dw[i] > 0) deltas.push_back(dw[i]);
          }
          std::sort(deltas.rbegin(), deltas.rend());
          uint64_t reduced = w;
          for (const Weight d : deltas) {
            if (reduced <= limit) break;
            reduced -= d;
            ++crd;
          }
          if (reduced > limit) continue;  // cannot fit (defensive)
        }
        if (crd < best.card ||
            (crd == best.card && base.rootweight < best.rootweight)) {
          best.card = crd;
          best.rootweight = base.rootweight;
        }
      }
      table[s][j] = best;
    }
  }
  return table[node_weight][n];
}

struct Case {
  uint64_t seed;
  size_t max_children;
  Weight max_weight;
  uint32_t limit;
  bool with_deltas;
};

class FlatDpReferenceTest : public ::testing::TestWithParam<Case> {};

TEST_P(FlatDpReferenceTest, AgreesWithNaiveFullTable) {
  const Case& c = GetParam();
  Rng rng(c.seed);
  for (int iter = 0; iter < 40; ++iter) {
    const size_t n = rng.NextBounded(c.max_children + 1);
    const Weight node_weight =
        1 + static_cast<Weight>(rng.NextBounded(
                std::min<uint32_t>(c.max_weight, c.limit)));
    std::vector<Weight> cw(n);
    std::vector<Weight> dw(n, 0);
    for (size_t i = 0; i < n; ++i) {
      cw[i] = 1 + static_cast<Weight>(rng.NextBounded(
                      std::min<uint32_t>(c.max_weight, c.limit)));
      if (c.with_deltas && cw[i] > 1 && rng.NextBool(0.5)) {
        dw[i] = static_cast<Weight>(rng.NextBounded(cw[i]));
      }
    }
    const NaiveEntry expected = NaiveDp(node_weight, cw, dw, c.limit);

    FlatDp dp(node_weight, cw, dw, c.limit);
    dp.EnsureSeed(node_weight);
    const FlatDp::Entry* actual = dp.FinalEntry(node_weight);
    ASSERT_NE(actual, nullptr);
    EXPECT_EQ(actual->card, expected.card)
        << "seed " << c.seed << " iter " << iter << " n=" << n;
    EXPECT_EQ(actual->rootweight, expected.rootweight)
        << "seed " << c.seed << " iter " << iter << " n=" << n;

    // The extracted chain must be consistent with the reported entry:
    // interval count + switch count == card, intervals disjoint and
    // ordered.
    uint32_t chain_card = 0;
    int64_t prev_begin = static_cast<int64_t>(n);
    for (const FlatDp::IntervalChoice& choice : dp.ExtractChain(node_weight)) {
      chain_card += 1 + static_cast<uint32_t>(choice.nearly.size());
      EXPECT_LE(choice.begin, choice.end);
      EXPECT_LT(static_cast<int64_t>(choice.end), prev_begin);
      prev_begin = choice.begin;
      for (const uint32_t idx : choice.nearly) {
        EXPECT_GE(idx, choice.begin);
        EXPECT_LE(idx, choice.end);
        EXPECT_GT(dw[idx], 0u);
      }
    }
    EXPECT_EQ(chain_card, actual->card);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FlatDpReferenceTest,
    ::testing::Values(
        // Plain FDW/GHDW mode.
        Case{1, 8, 4, 10, false}, Case{2, 15, 3, 8, false},
        Case{3, 20, 10, 16, false}, Case{4, 6, 16, 16, false},
        Case{5, 30, 2, 12, false},
        // DHW mode with nearly-optimal switches.
        Case{6, 8, 4, 10, true}, Case{7, 15, 3, 8, true},
        Case{8, 20, 10, 16, true}, Case{9, 12, 12, 14, true},
        Case{10, 25, 5, 20, true}),
    [](const ::testing::TestParamInfo<Case>& info) {
      return "seed" + std::to_string(info.param.seed) +
             (info.param.with_deltas ? "_dhw" : "_plain");
    });

// Every reachable seed (not just w(t)) must agree with the naive table.
TEST(FlatDpReferenceTest, AllSeedsAgree) {
  Rng rng(77);
  for (int iter = 0; iter < 20; ++iter) {
    const size_t n = 1 + rng.NextBounded(10);
    constexpr uint32_t kLimit = 12;
    std::vector<Weight> cw(n);
    for (size_t i = 0; i < n; ++i) {
      cw[i] = 1 + static_cast<Weight>(rng.NextBounded(5));
    }
    FlatDp dp(1, cw, {}, kLimit);
    for (uint32_t s = 1; s <= kLimit; ++s) {
      dp.EnsureSeed(s);
      const FlatDp::Entry* actual = dp.FinalEntry(s);
      ASSERT_NE(actual, nullptr);
      const NaiveEntry expected =
          NaiveDp(static_cast<Weight>(s), cw, std::vector<Weight>(n, 0),
                  kLimit);
      EXPECT_EQ(actual->card, expected.card) << "s=" << s;
      EXPECT_EQ(actual->rootweight, expected.rootweight) << "s=" << s;
    }
  }
}

}  // namespace
}  // namespace natix
