// Tests for the following-sibling / preceding-sibling axes -- the axes
// most directly served by sibling partitioning (an interval's siblings
// share a record, so sibling scans stay intra-record under EKM/DHW but
// cross records under KM).
#include <gtest/gtest.h>

#include "core/heuristics.h"
#include "datagen/generator.h"
#include "query/evaluator.h"
#include "query/parser.h"
#include "query/reference_evaluator.h"
#include "xml/importer.h"

namespace natix {
namespace {

TEST(SiblingAxesTest, ParserAcceptsSiblingAxes) {
  const Result<PathExpr> p =
      ParseXPath("/a/b/following-sibling::c/preceding-sibling::*");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  ASSERT_EQ(p->steps.size(), 4u);
  EXPECT_EQ(p->steps[2].axis, Axis::kFollowingSibling);
  EXPECT_EQ(p->steps[3].axis, Axis::kPrecedingSibling);
}

struct Ctx {
  std::unique_ptr<ImportedDocument> doc;
  std::unique_ptr<NatixStore> store;
};

Ctx Make(std::string_view xml, TotalWeight limit = 16) {
  Ctx ctx;
  Result<ImportedDocument> imp = ImportXml(xml, WeightModel());
  EXPECT_TRUE(imp.ok());
  ctx.doc = std::make_unique<ImportedDocument>(std::move(imp).value());
  Result<Partitioning> p = EkmPartition(ctx.doc->tree, limit);
  EXPECT_TRUE(p.ok());
  Result<NatixStore> store = NatixStore::Build(ctx.doc->Clone(), *p, limit);
  EXPECT_TRUE(store.ok());
  ctx.store = std::make_unique<NatixStore>(std::move(store).value());
  return ctx;
}

std::vector<NodeId> Query(Ctx& ctx, std::string_view q) {
  const Result<PathExpr> path = ParseXPath(q);
  EXPECT_TRUE(path.ok()) << q;
  AccessStats stats;
  StoreQueryEvaluator eval(ctx.store.get(), &stats);
  Result<std::vector<NodeId>> r = eval.Evaluate(*path);
  EXPECT_TRUE(r.ok()) << q;
  return r.ok() ? *r : std::vector<NodeId>{};
}

TEST(SiblingAxesTest, FollowingSibling) {
  Ctx ctx = Make("<r><a/><b/><a/><c/><a/></r>");
  // Following siblings of the first a: b, a, c, a.
  EXPECT_EQ(Query(ctx, "/r/b/following-sibling::a").size(), 2u);
  EXPECT_EQ(Query(ctx, "/r/b/following-sibling::*").size(), 3u);
  EXPECT_EQ(Query(ctx, "/r/c/following-sibling::b").size(), 0u);
}

TEST(SiblingAxesTest, PrecedingSibling) {
  Ctx ctx = Make("<r><a/><b/><a/><c/><a/></r>");
  EXPECT_EQ(Query(ctx, "/r/c/preceding-sibling::a").size(), 2u);
  EXPECT_EQ(Query(ctx, "/r/c/preceding-sibling::*").size(), 3u);
}

TEST(SiblingAxesTest, RootHasNoSiblings) {
  Ctx ctx = Make("<r><a/></r>");
  EXPECT_TRUE(Query(ctx, "/r/following-sibling::*").empty());
  EXPECT_TRUE(Query(ctx, "/r/preceding-sibling::*").empty());
}

TEST(SiblingAxesTest, ResultsInDocumentOrder) {
  Ctx ctx = Make("<r><a/><b/><c/><d/></r>");
  const std::vector<NodeId> r = Query(ctx, "/r/d/preceding-sibling::*");
  ASSERT_EQ(r.size(), 3u);
  EXPECT_LT(r[0], r[1]);
  EXPECT_LT(r[1], r[2]);
}

TEST(SiblingAxesTest, InPredicates) {
  Ctx ctx = Make("<r><x/><item/><item/><y/></r>");
  // Items directly followed (transitively) by a y element.
  EXPECT_EQ(Query(ctx, "/r/item[following-sibling::y]").size(), 2u);
  EXPECT_EQ(Query(ctx, "/r/item[preceding-sibling::x]").size(), 2u);
  EXPECT_EQ(Query(ctx, "/r/item[following-sibling::x]").size(), 0u);
}

TEST(SiblingAxesTest, TextNodesOnNodeAxis) {
  Ctx ctx = Make("<r>one<a/>two</r>");
  EXPECT_EQ(Query(ctx, "/r/a/following-sibling::node()").size(), 1u);
  EXPECT_EQ(Query(ctx, "/r/a/preceding-sibling::node()").size(), 1u);
}

TEST(SiblingAxesTest, StoreAgreesWithReferenceOnXmark) {
  WeightModel model;
  model.max_node_slots = 256;
  const std::string xml = GenerateXmark(29, 0.02);
  Result<ImportedDocument> impr = ImportXml(xml, model);
  ASSERT_TRUE(impr.ok());
  const ImportedDocument doc = std::move(impr).value();
  const Result<Partitioning> p = EkmPartition(doc.tree, 256);
  ASSERT_TRUE(p.ok());
  const Result<NatixStore> store = NatixStore::Build(doc.Clone(), *p, 256);
  ASSERT_TRUE(store.ok());
  const char* queries[] = {
      "/site/regions/*/item/following-sibling::item",
      "//listitem/following-sibling::listitem",
      "//keyword/preceding-sibling::node()",
      "/site/regions/africa/item[following-sibling::item]",
      "//mail/following-sibling::mail",
  };
  for (const char* q : queries) {
    const Result<PathExpr> path = ParseXPath(q);
    ASSERT_TRUE(path.ok()) << q;
    AccessStats stats;
    StoreQueryEvaluator eval(&*store, &stats);
    const auto via_store = eval.Evaluate(*path);
    const auto via_tree = EvaluateOnTree(doc.tree, *path);
    ASSERT_TRUE(via_store.ok() && via_tree.ok()) << q;
    EXPECT_EQ(*via_store, *via_tree) << q;
  }
}

TEST(SiblingAxesTest, SiblingScanIsIntraRecordUnderEkm) {
  // 20 unit-weight items under one parent, K large enough for all: EKM
  // keeps them in one partition, so a following-sibling scan never
  // crosses records; under KM each item is its own record.
  std::string xml = "<r>";
  for (int i = 0; i < 20; ++i) xml += "<item>0123456789012345</item>";
  xml += "</r>";
  Result<ImportedDocument> impr = ImportXml(xml, WeightModel());
  ASSERT_TRUE(impr.ok());
  const ImportedDocument doc = std::move(impr).value();

  auto crossings = [&](const Partitioning& p) {
    Result<NatixStore> store = NatixStore::Build(doc.Clone(), p, 64);
    EXPECT_TRUE(store.ok());
    const Result<PathExpr> path =
        ParseXPath("/r/item/following-sibling::item");
    EXPECT_TRUE(path.ok());
    AccessStats stats;
    StoreQueryEvaluator eval(&*store, &stats);
    EXPECT_TRUE(eval.Evaluate(*path).ok());
    return stats.record_crossings;
  };

  const Result<Partitioning> ekm = EkmPartition(doc.tree, 64);
  const Result<Partitioning> km = KmPartition(doc.tree, 64);
  ASSERT_TRUE(ekm.ok() && km.ok());
  EXPECT_LT(crossings(*ekm), crossings(*km) / 2);
}

}  // namespace
}  // namespace natix
