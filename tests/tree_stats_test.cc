#include "tree/tree_stats.h"

#include <gtest/gtest.h>

#include <numeric>

#include "tests/test_util.h"

namespace natix {
namespace {

TEST(TreeStatsTest, EmptyTree) {
  Tree t;
  const TreeStats s = ComputeTreeStats(t);
  EXPECT_EQ(s.node_count, 0u);
  EXPECT_EQ(s.total_weight, 0u);
}

TEST(TreeStatsTest, Fig3) {
  const TreeStats s = ComputeTreeStats(testing_util::Fig3Tree());
  EXPECT_EQ(s.node_count, 8u);
  EXPECT_EQ(s.total_weight, 14u);
  EXPECT_EQ(s.max_node_weight, 3u);
  EXPECT_EQ(s.height, 2);
  EXPECT_EQ(s.leaf_count, 6u);
  EXPECT_EQ(s.inner_count, 2u);
  EXPECT_EQ(s.max_fanout, 5u);
  EXPECT_DOUBLE_EQ(s.avg_fanout, 3.5);  // (5 + 2) / 2
  ASSERT_EQ(s.depth_histogram.size(), 3u);
  EXPECT_EQ(s.depth_histogram[0], 1u);
  EXPECT_EQ(s.depth_histogram[1], 5u);
  EXPECT_EQ(s.depth_histogram[2], 2u);
}

TEST(TreeStatsTest, HistogramsSumToNodeCount) {
  Rng rng(3);
  for (int i = 0; i < 20; ++i) {
    const Tree t = testing_util::RandomTree(rng, 300, 7);
    const TreeStats s = ComputeTreeStats(t);
    EXPECT_EQ(std::accumulate(s.depth_histogram.begin(),
                              s.depth_histogram.end(), size_t{0}),
              t.size());
    EXPECT_EQ(s.leaf_count + s.inner_count, t.size());
    size_t kinds = 0;
    for (const size_t c : s.kind_counts) kinds += c;
    EXPECT_EQ(kinds, t.size());
    EXPECT_EQ(s.total_weight, t.TotalTreeWeight());
    EXPECT_EQ(s.height, t.Height());
  }
}

TEST(TreeStatsTest, FanoutBuckets) {
  // Root with 9 children: fanout 9 lands in bucket 3 ([8, 16)).
  Tree t;
  t.AddRoot(1);
  for (int i = 0; i < 9; ++i) t.AppendChild(t.root(), 1);
  const TreeStats s = ComputeTreeStats(t);
  ASSERT_EQ(s.fanout_histogram.size(), 4u);
  EXPECT_EQ(s.fanout_histogram[3], 1u);
  EXPECT_EQ(s.max_fanout, 9u);
}

TEST(TreeStatsTest, ToStringMentionsKeyNumbers) {
  const std::string out = ToString(ComputeTreeStats(testing_util::Fig3Tree()));
  EXPECT_NE(out.find("nodes: 8"), std::string::npos);
  EXPECT_NE(out.find("height 2"), std::string::npos);
  EXPECT_NE(out.find("depth histogram:"), std::string::npos);
}

}  // namespace
}  // namespace natix
