#include "bulkload/streaming.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/exact_algorithms.h"
#include "core/heuristics.h"
#include "datagen/generator.h"
#include "tests/test_util.h"
#include "xml/importer.h"

namespace natix {
namespace {

// Canonical form for partitioning comparison: sorted interval list.
std::vector<std::pair<NodeId, NodeId>> Canonical(const Partitioning& p) {
  std::vector<std::pair<NodeId, NodeId>> out;
  out.reserve(p.size());
  for (const SiblingInterval& iv : p) out.push_back({iv.first, iv.last});
  std::sort(out.begin(), out.end());
  return out;
}

TEST(BulkloadTest, TinyDocument) {
  BulkloadOptions opts;
  opts.limit = 4;
  const Result<BulkloadResult> r =
      StreamingBulkload("<a><b>xxxxxxxx</b><c/></a>", opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->tree.size(), 4u);
  testing_util::MustBeFeasible(r->tree, r->partitioning, 4);
}

TEST(BulkloadTest, TreeMatchesBatchImporter) {
  WeightModel model;
  model.max_node_slots = 64;
  const std::string xml = GenerateMondial(9, 0.02);
  const Result<ImportedDocument> imp = ImportXml(xml, model);
  ASSERT_TRUE(imp.ok());
  BulkloadOptions opts;
  opts.limit = 64;
  opts.weight_model = model;
  const Result<BulkloadResult> r = StreamingBulkload(xml, opts);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->tree.size(), imp->tree.size());
  EXPECT_EQ(r->tree.TotalTreeWeight(), imp->tree.TotalTreeWeight());
  for (NodeId v = 0; v < r->tree.size(); ++v) {
    EXPECT_EQ(r->tree.WeightOf(v), imp->tree.WeightOf(v));
    EXPECT_EQ(r->tree.Parent(v), imp->tree.Parent(v));
    EXPECT_EQ(r->tree.LabelOf(v), imp->tree.LabelOf(v));
  }
}

// The central property: streaming with a rule == the batch algorithm.
TEST(BulkloadTest, StreamingEqualsBatch) {
  const struct {
    BulkloadRule rule;
    Result<Partitioning> (*batch)(const Tree&, TotalWeight);
    const char* name;
  } cases[] = {
      {BulkloadRule::kRs, &RsPartition, "RS"},
      {BulkloadRule::kKm, &KmPartition, "KM"},
  };
  for (const auto& g : DocumentGenerators()) {
    const std::string xml = g.generate(21, 0.02);
    WeightModel model;
    model.max_node_slots = 128;
    const Result<ImportedDocument> imp = ImportXml(xml, model);
    ASSERT_TRUE(imp.ok()) << g.name;
    for (const auto& c : cases) {
      BulkloadOptions opts;
      opts.limit = 128;
      const Result<BulkloadResult> streaming = StreamingBulkload(xml, opts);
      ASSERT_TRUE(streaming.ok()) << g.name << "/" << c.name;
      // (rule set below; re-run with the right rule)
      BulkloadOptions opts2 = opts;
      opts2.rule = c.rule;
      const Result<BulkloadResult> r = StreamingBulkload(xml, opts2);
      ASSERT_TRUE(r.ok()) << g.name << "/" << c.name;
      const Result<Partitioning> batch = c.batch(imp->tree, 128);
      ASSERT_TRUE(batch.ok()) << g.name << "/" << c.name;
      EXPECT_EQ(Canonical(r->partitioning), Canonical(*batch))
          << g.name << "/" << c.name;
    }
    // GHDW rule vs batch GHDW.
    BulkloadOptions opts;
    opts.limit = 128;
    opts.rule = BulkloadRule::kGhdw;
    const Result<BulkloadResult> r = StreamingBulkload(xml, opts);
    ASSERT_TRUE(r.ok()) << g.name;
    const Result<Partitioning> batch = GhdwPartition(imp->tree, 128);
    ASSERT_TRUE(batch.ok()) << g.name;
    EXPECT_EQ(Canonical(r->partitioning), Canonical(*batch)) << g.name;
  }
}

TEST(BulkloadTest, ResidentMemoryIsBounded) {
  // A deep document: the working set must stay far below the node count.
  const std::string xml = GenerateXmark(13, 0.05);
  BulkloadOptions opts;
  opts.limit = 256;
  const Result<BulkloadResult> r = StreamingBulkload(xml, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_LT(r->peak_resident_nodes, r->tree.size() / 3)
      << "peak " << r->peak_resident_nodes << " of " << r->tree.size();
  testing_util::MustBeFeasible(r->tree, r->partitioning, 256);
}

TEST(BulkloadTest, EarlyFlushCapsWideFanout) {
  // A root with thousands of children is the worst case for bottom-up
  // streaming (Sec. 4.3); max_pending_children must cap the working set.
  std::string xml = "<root>";
  for (int i = 0; i < 5000; ++i) xml += "<item>abcdefgh</item>";
  xml += "</root>";

  BulkloadOptions unbounded;
  unbounded.limit = 64;
  const Result<BulkloadResult> r1 = StreamingBulkload(xml, unbounded);
  ASSERT_TRUE(r1.ok());
  EXPECT_GT(r1->peak_resident_nodes, 5000u);
  EXPECT_EQ(r1->forced_flushes, 0u);

  BulkloadOptions bounded = unbounded;
  bounded.max_pending_children = 64;
  const Result<BulkloadResult> r2 = StreamingBulkload(xml, bounded);
  ASSERT_TRUE(r2.ok());
  EXPECT_LT(r2->peak_resident_nodes, 300u);
  EXPECT_GT(r2->forced_flushes, 0u);
  testing_util::MustBeFeasible(r2->tree, r2->partitioning, 64);
  // The memory bound costs some partition quality, but not much here.
  EXPECT_LE(r2->partitioning.size(), r1->partitioning.size() + 10);
}

TEST(BulkloadTest, OversizedTextIsExternalized) {
  const std::string big(100000, 'x');
  BulkloadOptions opts;
  opts.limit = 32;
  const Result<BulkloadResult> r =
      StreamingBulkload("<a><t>" + big + "</t></a>", opts);
  ASSERT_TRUE(r.ok());
  EXPECT_LE(r->tree.MaxNodeWeight(), 32u);
  testing_util::MustBeFeasible(r->tree, r->partitioning, 32);
}

TEST(BulkloadTest, ParseErrorsPropagate) {
  BulkloadOptions opts;
  EXPECT_FALSE(StreamingBulkload("<a><b></a>", opts).ok());
  EXPECT_FALSE(StreamingBulkload("", opts).ok());
}

TEST(BulkloadTest, AllRulesFeasibleOnCorpus) {
  for (const auto& g : DocumentGenerators()) {
    const std::string xml = g.generate(5, 0.01);
    for (const BulkloadRule rule :
         {BulkloadRule::kRs, BulkloadRule::kKm, BulkloadRule::kGhdw}) {
      BulkloadOptions opts;
      opts.limit = 64;
      opts.rule = rule;
      opts.max_pending_children = 32;
      const Result<BulkloadResult> r = StreamingBulkload(xml, opts);
      ASSERT_TRUE(r.ok()) << g.name;
      testing_util::MustBeFeasible(r->tree, r->partitioning, 64,
                                   std::string(g.name));
    }
  }
}

}  // namespace
}  // namespace natix
