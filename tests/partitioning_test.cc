#include "tree/partitioning.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace natix {
namespace {

using testing_util::Fig3Tree;

// Node ids in the Fig. 3 tree, by construction order of the spec
// "a:3(b:2 c:1(d:2 e:2) f:1 g:1 h:2)".
constexpr NodeId kA = 0, kB = 1, kC = 2, kD = 3, kE = 4, kF = 5, kG = 6,
                 kH = 7;

TEST(PartitioningTest, RootWeightOfIntervalBF) {
  // Sec. 2.1: P := {(b,f)} has root weight 6 (only a, g, h remain with the
  // root), and the interval (b,f) defines the partition {Tb, Tc, Tf} of
  // weight 2 + 5 + 1 = 8.
  const Tree t = Fig3Tree();
  Partitioning p;
  p.Add(kB, kF);
  const Result<PartitionAnalysis> a = Analyze(t, p, 100);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->root_weight, 6u);
  EXPECT_EQ(a->interval_weights[0], 8u);
  // No root interval => not feasible even under a huge limit.
  EXPECT_FALSE(a->feasible);
}

TEST(PartitioningTest, FeasibleExampleFromPaper) {
  // Sec. 2.1: {(a,a), (b,b), (c,c), (f,g)} is feasible for K = 5;
  // h shares the root partition, root weight 5.
  const Tree t = Fig3Tree();
  Partitioning p;
  p.Add(kA, kA);
  p.Add(kB, kB);
  p.Add(kC, kC);
  p.Add(kF, kG);
  const Result<PartitionAnalysis> a = Analyze(t, p, 5);
  ASSERT_TRUE(a.ok());
  EXPECT_TRUE(a->feasible);
  EXPECT_EQ(a->cardinality, 4u);
  EXPECT_EQ(a->root_weight, 5u);
}

TEST(PartitioningTest, MinimalButNotLeanExample) {
  // Sec. 2.1: R := {(a,a), (c,c), (f,h)} is minimal (3 partitions, K = 5)
  // with root weight 5 (b stays with the root), but not lean.
  const Tree t = Fig3Tree();
  Partitioning r;
  r.Add(kA, kA);
  r.Add(kC, kC);
  r.Add(kF, kH);
  const Result<PartitionAnalysis> a = Analyze(t, r, 5);
  ASSERT_TRUE(a.ok());
  EXPECT_TRUE(a->feasible);
  EXPECT_EQ(a->cardinality, 3u);
  EXPECT_EQ(a->root_weight, 5u);
}

TEST(PartitioningTest, OptimalExampleFromPaper) {
  // Sec. 2.1: P := {(a,a), (c,h), (d,e)} is optimal: 3 partitions. The
  // paper states a root weight of 3, but by its own definitions b is not a
  // member of any interval and stays in the root partition, giving
  // w(a) + w(b) = 5. Exhaustive enumeration (optimality_property_test)
  // confirms 5 is the minimal root weight among 3-partition solutions, so
  // the "3" in the paper is a typo and P is indeed optimal.
  const Tree t = Fig3Tree();
  Partitioning p;
  p.Add(kA, kA);
  p.Add(kC, kH);
  p.Add(kD, kE);
  const Result<PartitionAnalysis> a = Analyze(t, p, 5);
  ASSERT_TRUE(a.ok());
  EXPECT_TRUE(a->feasible);
  EXPECT_EQ(a->cardinality, 3u);
  EXPECT_EQ(a->root_weight, 5u);
  // Interval (c,h) holds c (without d, e), f, g, h: 1 + 1 + 1 + 2 = 5.
  EXPECT_EQ(a->interval_weights[1], 5u);
  EXPECT_EQ(a->interval_weights[2], 4u);
}

TEST(PartitioningTest, PartitionOfMembership) {
  const Tree t = Fig3Tree();
  Partitioning p;
  p.Add(kA, kA);
  p.Add(kC, kH);
  p.Add(kD, kE);
  const Result<PartitionAnalysis> a = Analyze(t, p, 5);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->partition_of[kA], 0u);
  EXPECT_EQ(a->partition_of[kB], 0u);  // b inherits the root's partition
  EXPECT_EQ(a->partition_of[kC], 1u);
  EXPECT_EQ(a->partition_of[kD], 2u);
  EXPECT_EQ(a->partition_of[kE], 2u);
  EXPECT_EQ(a->partition_of[kF], 1u);
  EXPECT_EQ(a->partition_of[kH], 1u);
}

TEST(PartitioningTest, RejectsOverlappingIntervals) {
  const Tree t = Fig3Tree();
  Partitioning p;
  p.Add(kB, kF);
  p.Add(kC, kC);
  EXPECT_FALSE(Analyze(t, p, 100).ok());
}

TEST(PartitioningTest, RejectsEndpointsWithDifferentParents) {
  const Tree t = Fig3Tree();
  Partitioning p;
  p.Add(kD, kF);  // d's parent is c, f's parent is a
  EXPECT_FALSE(Analyze(t, p, 100).ok());
}

TEST(PartitioningTest, RejectsReversedInterval) {
  const Tree t = Fig3Tree();
  Partitioning p;
  p.Add(kF, kB);  // f comes after b
  EXPECT_FALSE(Analyze(t, p, 100).ok());
}

TEST(PartitioningTest, RejectsOutOfRangeNodes) {
  const Tree t = Fig3Tree();
  Partitioning p;
  p.Add(42, 42);
  EXPECT_FALSE(Analyze(t, p, 100).ok());
}

TEST(PartitioningTest, CheckFeasibleReportsWeightViolation) {
  const Tree t = Fig3Tree();
  Partitioning p;
  p.Add(kA, kA);  // whole tree in one partition: weight 14
  EXPECT_TRUE(CheckFeasible(t, p, 14).ok());
  const Status s = CheckFeasible(t, p, 5);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(PartitioningTest, CheckFeasibleReportsMissingRootInterval) {
  const Tree t = Fig3Tree();
  Partitioning p;
  p.Add(kB, kB);
  const Status s = CheckFeasible(t, p, 100);
  EXPECT_FALSE(s.ok());
}

TEST(PartitioningTest, SingletonPartitioningAlwaysFeasible) {
  // Every node in its own interval: partition weights = node weights.
  const Tree t = Fig3Tree();
  Partitioning p;
  for (NodeId v = 0; v < t.size(); ++v) p.Add(v, v);
  const Result<PartitionAnalysis> a = Analyze(t, p, 3);
  ASSERT_TRUE(a.ok());
  EXPECT_TRUE(a->feasible);
  EXPECT_EQ(a->cardinality, t.size());
  EXPECT_EQ(a->max_weight, 3u);
  EXPECT_EQ(a->root_weight, 3u);
}

TEST(PartitioningTest, AverageWeight) {
  const Tree t = Fig3Tree();
  Partitioning p;
  p.Add(kA, kA);
  const Result<PartitionAnalysis> a = Analyze(t, p, 100);
  ASSERT_TRUE(a.ok());
  EXPECT_DOUBLE_EQ(a->avg_weight, 14.0);
}

TEST(PartitioningTest, ToStringUsesLabels) {
  const Tree t = Fig3Tree();
  Partitioning p;
  p.Add(kA, kA);
  p.Add(kC, kH);
  EXPECT_EQ(ToString(t, p), "{(a,a), (c,h)}");
}

TEST(PartitioningTest, EmptyTreeIsRejected) {
  Tree t;
  Partitioning p;
  EXPECT_FALSE(Analyze(t, p, 5).ok());
}

}  // namespace
}  // namespace natix
