#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

namespace natix {
namespace {

TEST(ThreadPoolTest, RunsEveryIndependentTaskExactlyOnce) {
  constexpr size_t kTasks = 1000;
  std::vector<uint32_t> deps(kTasks, 0);
  std::vector<uint32_t> dependent(kTasks, ThreadPool::kNoDependent);
  std::vector<std::atomic<uint32_t>> ran(kTasks);
  for (auto& r : ran) r.store(0);

  ThreadPool pool(4);
  EXPECT_EQ(pool.worker_count(), 4u);
  pool.RunGraph(kTasks, deps.data(), dependent.data(),
                [&](size_t task, unsigned worker) {
                  ASSERT_LT(worker, 4u);
                  ran[task].fetch_add(1);
                });
  for (size_t i = 0; i < kTasks; ++i) EXPECT_EQ(ran[i].load(), 1u) << i;
}

TEST(ThreadPoolTest, RespectsChainDependencies) {
  // A single chain 0 <- 1 <- ... <- n-1 (task i depends on task i-1): the
  // completion order must be exactly 0, 1, ..., n-1 however many workers
  // steal.
  constexpr size_t kTasks = 200;
  std::vector<uint32_t> deps(kTasks, 1);
  deps[0] = 0;
  std::vector<uint32_t> dependent(kTasks, ThreadPool::kNoDependent);
  for (size_t i = 0; i + 1 < kTasks; ++i) {
    dependent[i] = static_cast<uint32_t>(i + 1);
  }

  std::vector<size_t> order;
  std::mutex mu;
  ThreadPool pool(3);
  pool.RunGraph(kTasks, deps.data(), dependent.data(),
                [&](size_t task, unsigned) {
                  std::lock_guard<std::mutex> lock(mu);
                  order.push_back(task);
                });
  ASSERT_EQ(order.size(), kTasks);
  for (size_t i = 0; i < kTasks; ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPoolTest, BottomUpTreeAccumulation) {
  // A complete binary tree of tasks; every task adds its children's
  // results plus one into its own slot. The root must see the whole count,
  // which proves children always complete before their parent.
  constexpr size_t kTasks = (1u << 10) - 1;  // heap layout, root = 0
  std::vector<uint32_t> deps(kTasks, 0);
  std::vector<uint32_t> dependent(kTasks, ThreadPool::kNoDependent);
  for (size_t i = 1; i < kTasks; ++i) {
    dependent[i] = static_cast<uint32_t>((i - 1) / 2);
    ++deps[(i - 1) / 2];
  }
  std::vector<uint64_t> sum(kTasks, 0);

  ThreadPool pool(4);
  pool.RunGraph(kTasks, deps.data(), dependent.data(),
                [&](size_t task, unsigned) {
                  uint64_t total = 1;
                  const size_t left = 2 * task + 1;
                  const size_t right = 2 * task + 2;
                  if (left < kTasks) total += sum[left];
                  if (right < kTasks) total += sum[right];
                  sum[task] = total;
                });
  EXPECT_EQ(sum[0], kTasks);
}

TEST(ThreadPoolTest, ReusableAcrossGraphs) {
  ThreadPool pool(2);
  for (int round = 0; round < 20; ++round) {
    constexpr size_t kTasks = 64;
    std::vector<uint32_t> deps(kTasks, 0);
    std::vector<uint32_t> dependent(kTasks, ThreadPool::kNoDependent);
    std::atomic<size_t> count{0};
    pool.RunGraph(kTasks, deps.data(), dependent.data(),
                  [&](size_t, unsigned) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), kTasks) << "round " << round;
  }
}

TEST(ThreadPoolTest, SingleWorkerAndEmptyGraph) {
  ThreadPool pool(1);
  size_t count = 0;
  std::vector<uint32_t> deps(3, 0);
  std::vector<uint32_t> dependent(3, ThreadPool::kNoDependent);
  pool.RunGraph(0, nullptr, nullptr, [&](size_t, unsigned) { ++count; });
  EXPECT_EQ(count, 0u);
  pool.RunGraph(3, deps.data(), dependent.data(),
                [&](size_t, unsigned worker) {
                  EXPECT_EQ(worker, 0u);
                  ++count;
                });
  EXPECT_EQ(count, 3u);
}

}  // namespace
}  // namespace natix
