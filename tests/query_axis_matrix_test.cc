// Combinatorial axis coverage: every (axis, node test) pair, evaluated on
// random documents through the store evaluator and the independent
// reference evaluator, across several partitionings. Catches axis
// semantics drift that hand-picked queries might miss.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "common/rng.h"
#include "core/heuristics.h"
#include "query/evaluator.h"
#include "query/parser.h"
#include "query/reference_evaluator.h"
#include "storage/store.h"
#include "xml/importer.h"

namespace natix {
namespace {

// Random XML with a small, collision-rich vocabulary so name tests hit.
std::string RandomXml(Rng& rng, int ops) {
  static constexpr const char* kNames[] = {"a", "b", "c", "d"};
  std::string xml = "<a>";
  std::vector<const char*> stack = {"a"};
  for (int i = 0; i < ops; ++i) {
    const double dice = rng.NextDouble();
    if (dice < 0.4) {
      const char* name = kNames[rng.NextBounded(4)];
      xml += std::string("<") + name + ">";
      stack.push_back(name);
    } else if (dice < 0.65 && stack.size() > 1) {
      xml += std::string("</") + stack.back() + ">";
      stack.pop_back();
    } else if (dice < 0.8) {
      xml += "txt ";
    } else {
      xml += std::string("<") + kNames[rng.NextBounded(4)] + " x=\"1\"/>";
    }
  }
  while (!stack.empty()) {
    xml += std::string("</") + stack.back() + ">";
    stack.pop_back();
  }
  return xml;
}

struct MatrixCase {
  const char* axis;      // "" = default child axis
  const char* test;      // name, * or node()
};

class AxisMatrixTest : public ::testing::TestWithParam<MatrixCase> {};

TEST_P(AxisMatrixTest, StoreEqualsReference) {
  const MatrixCase& c = GetParam();
  Rng rng(static_cast<uint64_t>(std::string(c.axis).size() * 131 +
                                std::string(c.test).size()));
  for (int iter = 0; iter < 12; ++iter) {
    const std::string xml = RandomXml(rng, 40 + iter * 15);
    WeightModel model;
    Result<ImportedDocument> imp = ImportXml(xml, model);
    ASSERT_TRUE(imp.ok()) << xml;
    const ImportedDocument doc = std::move(imp).value();

    // Queries applying the axis at two depths, with and without //.
    const std::string axis_prefix =
        std::string(c.axis).empty() ? "" : std::string(c.axis) + "::";
    const std::string queries[] = {
        "/a/" + axis_prefix + c.test,
        "//b/" + axis_prefix + c.test,
        "/a/*/" + axis_prefix + c.test,
    };
    for (const std::string& q : queries) {
      const Result<PathExpr> path = ParseXPath(q);
      ASSERT_TRUE(path.ok()) << q;
      const Result<std::vector<NodeId>> reference =
          EvaluateOnTree(doc.tree, *path);
      ASSERT_TRUE(reference.ok()) << q;
      for (auto* partition_fn : {&EkmPartition, &KmPartition}) {
        const Result<Partitioning> p = (*partition_fn)(doc.tree, 16);
        ASSERT_TRUE(p.ok());
        Result<NatixStore> store = NatixStore::Build(doc.Clone(), *p, 16);
        ASSERT_TRUE(store.ok());
        // Document resident: the debug shadow check cross-validates every
        // record-decoded move against the tree.
        AccessStats stats;
        StoreQueryEvaluator eval(&*store, &stats);
        const Result<std::vector<NodeId>> result = eval.Evaluate(*path);
        ASSERT_TRUE(result.ok()) << q;
        EXPECT_EQ(*result, *reference) << q << "\nxml: " << xml;

        // Same store with the document resident but routed through a
        // tiny 2-frame pool: the pool is a pure observer of crossings.
        Result<LruBufferPool> model_pool = LruBufferPool::Create(2);
        ASSERT_TRUE(model_pool.ok());
        AccessStats model_stats;
        StoreQueryEvaluator model_eval(&*store, &model_stats, &*model_pool);
        const Result<std::vector<NodeId>> model_result =
            model_eval.Evaluate(*path);
        ASSERT_TRUE(model_result.ok()) << q;
        EXPECT_EQ(*model_result, *reference) << q;

        // Document released, 2-frame pool: navigation reads only record
        // bytes, yet node sets, AccessStats and the pool's hit/miss/
        // eviction trace must be identical to the resident run.
        ASSERT_TRUE(store->ReleaseDocument().ok());
        Result<LruBufferPool> pool = LruBufferPool::Create(2);
        ASSERT_TRUE(pool.ok());
        AccessStats released_stats;
        StoreQueryEvaluator released_eval(&*store, &released_stats, &*pool);
        const Result<std::vector<NodeId>> released_result =
            released_eval.Evaluate(*path);
        ASSERT_TRUE(released_result.ok()) << q;
        EXPECT_EQ(*released_result, *reference) << q << "\nxml: " << xml;
        EXPECT_EQ(released_stats.intra_moves, stats.intra_moves) << q;
        EXPECT_EQ(released_stats.record_crossings, stats.record_crossings)
            << q;
        EXPECT_EQ(released_stats.page_switches, stats.page_switches) << q;
        EXPECT_EQ(pool->stats().accesses, model_pool->stats().accesses) << q;
        EXPECT_EQ(pool->stats().hits, model_pool->stats().hits) << q;
        EXPECT_EQ(pool->stats().misses, model_pool->stats().misses) << q;
        EXPECT_EQ(pool->stats().evictions, model_pool->stats().evictions)
            << q;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllAxes, AxisMatrixTest,
    ::testing::Values(MatrixCase{"", "b"}, MatrixCase{"", "*"},
                      MatrixCase{"", "node()"},
                      MatrixCase{"child", "c"},
                      MatrixCase{"descendant", "b"},
                      MatrixCase{"descendant", "node()"},
                      MatrixCase{"descendant-or-self", "a"},
                      MatrixCase{"descendant-or-self", "*"},
                      MatrixCase{"parent", "b"}, MatrixCase{"parent", "*"},
                      MatrixCase{"ancestor", "a"},
                      MatrixCase{"ancestor", "node()"},
                      MatrixCase{"ancestor-or-self", "b"},
                      MatrixCase{"self", "c"}, MatrixCase{"self", "node()"},
                      MatrixCase{"following-sibling", "b"},
                      MatrixCase{"following-sibling", "node()"},
                      MatrixCase{"preceding-sibling", "c"},
                      MatrixCase{"preceding-sibling", "*"}),
    [](const ::testing::TestParamInfo<MatrixCase>& info) {
      std::string name = std::string(info.param.axis).empty()
                             ? "child_abbrev"
                             : info.param.axis;
      std::string test = info.param.test;
      if (test == "*") test = "star";
      if (test == "node()") test = "node";
      for (char& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name + "_" + test;
    });

// Predicates over random axis combinations must also agree.
TEST(AxisMatrixTest, RandomPredicatesAgree) {
  Rng rng(909);
  static constexpr const char* kPredicates[] = {
      "[b]", "[b or c]", "[b and c]", "[parent::a]",
      "[following-sibling::b]", "[descendant::c]", "[b/c]",
      "[ancestor::b or c]",
  };
  for (int iter = 0; iter < 25; ++iter) {
    const std::string xml = RandomXml(rng, 60);
    Result<ImportedDocument> imp = ImportXml(xml, WeightModel());
    ASSERT_TRUE(imp.ok());
    const ImportedDocument doc = std::move(imp).value();
    const Result<Partitioning> p = EkmPartition(doc.tree, 16);
    ASSERT_TRUE(p.ok());
    const Result<NatixStore> store = NatixStore::Build(doc.Clone(), *p, 16);
    ASSERT_TRUE(store.ok());
    for (const char* pred : kPredicates) {
      const std::string q = std::string("//*") + pred;
      const Result<PathExpr> path = ParseXPath(q);
      ASSERT_TRUE(path.ok()) << q;
      const auto reference = EvaluateOnTree(doc.tree, *path);
      AccessStats stats;
      StoreQueryEvaluator eval(&*store, &stats);
      const auto result = eval.Evaluate(*path);
      ASSERT_TRUE(reference.ok() && result.ok()) << q;
      EXPECT_EQ(*result, *reference) << q << "\nxml: " << xml;
    }
  }
}

}  // namespace
}  // namespace natix
