#include <gtest/gtest.h>

#include "core/brute_force.h"
#include "core/exact_algorithms.h"
#include "tests/test_util.h"

namespace natix {
namespace {

using testing_util::Fig3Tree;
using testing_util::Fig6Tree;
using testing_util::Fig9Tree;
using testing_util::MustBeFeasible;
using testing_util::MustParse;

TEST(DhwTest, SingleNode) {
  const Tree t = MustParse("a:3");
  const Result<Partitioning> p = DhwPartition(t, 5);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->size(), 1u);
}

TEST(DhwTest, Fig6RequiresNearlyOptimalSubtree) {
  // Sec. 3.3.1, Fig. 6 (K = 5): the optimum is 3 partitions
  // {(a,a), (b,f), (d,e)} -- the c subtree must use its *nearly* optimal
  // partitioning (d, e cut away) so that b, c, f can share an interval.
  const Tree t = Fig6Tree();
  const Result<Partitioning> p = DhwPartition(t, 5);
  ASSERT_TRUE(p.ok());
  const PartitionAnalysis a = MustBeFeasible(t, *p, 5);
  EXPECT_EQ(a.cardinality, 3u) << ToString(t, *p);
}

TEST(DhwTest, Fig9OptimalIsTwoPartitions) {
  // Sec. 4.3.4, Fig. 9 (K = 5): optimal is {(a,a), (b,b)} with d, e in the
  // root partition; EKM needs 3.
  const Tree t = Fig9Tree();
  const Result<Partitioning> p = DhwPartition(t, 5);
  ASSERT_TRUE(p.ok());
  const PartitionAnalysis a = MustBeFeasible(t, *p, 5);
  EXPECT_EQ(a.cardinality, 2u) << ToString(t, *p);
}

TEST(DhwTest, Fig3RunningExample) {
  // Sec. 2.1 (K = 5): minimal cardinality 3; exhaustive enumeration shows
  // the minimal root weight among 3-partition solutions is 5.
  const Tree t = Fig3Tree();
  const Result<BruteForceResult> bf = BruteForceOptimal(t, 5);
  ASSERT_TRUE(bf.ok());
  EXPECT_EQ(bf->min_cardinality, 3u);
  EXPECT_EQ(bf->min_root_weight, 5u);
  const Result<Partitioning> p = DhwPartition(t, 5);
  ASSERT_TRUE(p.ok());
  const PartitionAnalysis a = MustBeFeasible(t, *p, 5);
  EXPECT_EQ(a.cardinality, 3u);
  EXPECT_EQ(a.root_weight, 5u);
}

TEST(DhwTest, MatchesGhdwWhenGreedySucceeds) {
  // On flat trees and chains GHDW is already optimal; DHW must agree.
  const char* specs[] = {"a:1(:1 :1 :1 :1)", "a:2(b:2(c:2(d:2)))",
                         "a:3(:1 :2 :3)"};
  for (const char* spec : specs) {
    const Tree t = MustParse(spec);
    const Result<Partitioning> d = DhwPartition(t, 5);
    const Result<Partitioning> g = GhdwPartition(t, 5);
    ASSERT_TRUE(d.ok() && g.ok());
    EXPECT_EQ(MustBeFeasible(t, *d, 5).cardinality,
              MustBeFeasible(t, *g, 5).cardinality)
        << spec;
  }
}

TEST(DhwTest, NeverWorseThanGhdw) {
  Rng rng(321);
  for (int iter = 0; iter < 60; ++iter) {
    const size_t n = 2 + rng.NextBounded(40);
    const Tree t = testing_util::RandomTree(rng, n, 6);
    const TotalWeight k = t.MaxNodeWeight() + rng.NextBounded(10);
    const Result<Partitioning> d = DhwPartition(t, k);
    const Result<Partitioning> g = GhdwPartition(t, k);
    ASSERT_TRUE(d.ok() && g.ok());
    const size_t cd = MustBeFeasible(t, *d, k, TreeToSpec(t)).cardinality;
    const size_t cg = MustBeFeasible(t, *g, k, TreeToSpec(t)).cardinality;
    EXPECT_LE(cd, cg) << TreeToSpec(t) << " K=" << k;
  }
}

TEST(DhwTest, LayeredPathology) {
  // A deeper variant of Fig. 6: every level needs the nearly optimal
  // choice of the level below to merge siblings above.
  const Tree t = MustParse(
      "r:5(x:1 a:1(b:1 c:1(d:2 e:2) f:1) y:1)");
  const Result<Partitioning> p = DhwPartition(t, 5);
  ASSERT_TRUE(p.ok());
  const PartitionAnalysis pa = MustBeFeasible(t, *p, 5);
  const Result<BruteForceResult> bf = BruteForceOptimal(t, 5);
  ASSERT_TRUE(bf.ok());
  EXPECT_EQ(pa.cardinality, bf->min_cardinality);
  EXPECT_EQ(pa.root_weight, bf->min_root_weight);
}

TEST(DhwTest, RejectsOversizedNode) {
  const Tree t = MustParse("a:2(b:9)");
  EXPECT_FALSE(DhwPartition(t, 5).ok());
}

TEST(DhwTest, LimitOneUnitWeights) {
  // K = 1 with unit weights: every node is its own partition.
  const Tree t = MustParse("a(b(c) d)");
  const Result<Partitioning> p = DhwPartition(t, 1);
  ASSERT_TRUE(p.ok());
  const PartitionAnalysis a = MustBeFeasible(t, *p, 1);
  EXPECT_EQ(a.cardinality, t.size());
}

TEST(DhwTest, StatsAccumulate) {
  const Tree t = Fig6Tree();
  DpStats stats;
  ASSERT_TRUE(DhwPartition(t, 5, &stats).ok());
  EXPECT_EQ(stats.inner_nodes, 2u);
  EXPECT_GT(stats.rows, 0u);
}

}  // namespace
}  // namespace natix
