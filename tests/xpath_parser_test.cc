#include "query/parser.h"

#include <gtest/gtest.h>

namespace natix {
namespace {

PathExpr MustParse(std::string_view q) {
  Result<PathExpr> p = ParseXPath(q);
  EXPECT_TRUE(p.ok()) << q << ": " << p.status().ToString();
  return p.ok() ? *std::move(p) : PathExpr{};
}

TEST(XPathParserTest, SimpleChildPath) {
  const PathExpr p = MustParse("/site/regions");
  EXPECT_TRUE(p.absolute);
  ASSERT_EQ(p.steps.size(), 2u);
  EXPECT_EQ(p.steps[0].axis, Axis::kChild);
  EXPECT_EQ(p.steps[0].name, "site");
  EXPECT_EQ(p.steps[1].name, "regions");
}

TEST(XPathParserTest, Wildcard) {
  const PathExpr p = MustParse("/site/regions/*/item");
  ASSERT_EQ(p.steps.size(), 4u);
  EXPECT_EQ(p.steps[2].test, NodeTestKind::kAnyElement);
  EXPECT_EQ(p.steps[3].name, "item");
}

TEST(XPathParserTest, DoubleSlashDesugars) {
  const PathExpr p = MustParse("//keyword");
  ASSERT_EQ(p.steps.size(), 2u);
  EXPECT_EQ(p.steps[0].axis, Axis::kDescendantOrSelf);
  EXPECT_EQ(p.steps[0].test, NodeTestKind::kAnyNode);
  EXPECT_EQ(p.steps[1].axis, Axis::kChild);
  EXPECT_EQ(p.steps[1].name, "keyword");
}

TEST(XPathParserTest, DoubleSlashInMiddle) {
  const PathExpr p = MustParse("/site//keyword");
  ASSERT_EQ(p.steps.size(), 3u);
  EXPECT_EQ(p.steps[1].axis, Axis::kDescendantOrSelf);
}

TEST(XPathParserTest, ExplicitAxes) {
  const PathExpr p =
      MustParse("/descendant-or-self::listitem/descendant-or-self::keyword");
  ASSERT_EQ(p.steps.size(), 2u);
  EXPECT_EQ(p.steps[0].axis, Axis::kDescendantOrSelf);
  EXPECT_EQ(p.steps[0].name, "listitem");
  EXPECT_EQ(p.steps[1].axis, Axis::kDescendantOrSelf);
  EXPECT_EQ(p.steps[1].name, "keyword");
}

TEST(XPathParserTest, AncestorAxis) {
  const PathExpr p = MustParse("//keyword/ancestor::listitem");
  ASSERT_EQ(p.steps.size(), 3u);
  EXPECT_EQ(p.steps[2].axis, Axis::kAncestor);
  EXPECT_EQ(p.steps[2].name, "listitem");
}

TEST(XPathParserTest, AncestorOrSelfAxis) {
  const PathExpr p = MustParse("//keyword/ancestor-or-self::mail");
  EXPECT_EQ(p.steps[2].axis, Axis::kAncestorOrSelf);
}

TEST(XPathParserTest, PredicateWithOr) {
  const PathExpr p =
      MustParse("/site/regions/*/item[parent::namerica or parent::samerica]");
  ASSERT_EQ(p.steps.size(), 4u);
  const Step& item = p.steps[3];
  ASSERT_EQ(item.predicates.size(), 1u);
  const PredicateExpr& pred = item.predicates[0];
  ASSERT_EQ(pred.kind, PredicateExpr::Kind::kOr);
  ASSERT_EQ(pred.operands.size(), 2u);
  EXPECT_EQ(pred.operands[0].kind, PredicateExpr::Kind::kPath);
  EXPECT_EQ(pred.operands[0].path.steps[0].axis, Axis::kParent);
  EXPECT_EQ(pred.operands[0].path.steps[0].name, "namerica");
  EXPECT_EQ(pred.operands[1].path.steps[0].name, "samerica");
}

TEST(XPathParserTest, PredicateWithAnd) {
  const PathExpr p = MustParse("/a/b[c and d]");
  const PredicateExpr& pred = p.steps[1].predicates[0];
  EXPECT_EQ(pred.kind, PredicateExpr::Kind::kAnd);
  ASSERT_EQ(pred.operands.size(), 2u);
}

TEST(XPathParserTest, NestedParentheses) {
  const PathExpr p = MustParse("/a/b[(c or d) and e]");
  const PredicateExpr& pred = p.steps[1].predicates[0];
  ASSERT_EQ(pred.kind, PredicateExpr::Kind::kAnd);
  EXPECT_EQ(pred.operands[0].kind, PredicateExpr::Kind::kOr);
}

TEST(XPathParserTest, PredicateWithRelativePath) {
  const PathExpr p = MustParse("/a/b[c/d]");
  const PredicateExpr& pred = p.steps[1].predicates[0];
  ASSERT_EQ(pred.kind, PredicateExpr::Kind::kPath);
  ASSERT_EQ(pred.path.steps.size(), 2u);
  EXPECT_FALSE(pred.path.absolute);
}

TEST(XPathParserTest, MultiplePredicates) {
  const PathExpr p = MustParse("/a/b[c][d]");
  EXPECT_EQ(p.steps[1].predicates.size(), 2u);
}

TEST(XPathParserTest, NodeTest) {
  const PathExpr p = MustParse("/a/node()");
  EXPECT_EQ(p.steps[1].test, NodeTestKind::kAnyNode);
}

TEST(XPathParserTest, ElementNamedOrd) {
  // Names starting with keyword prefixes must not confuse the predicate
  // parser.
  const PathExpr p = MustParse("/a/b[ord or android]");
  const PredicateExpr& pred = p.steps[1].predicates[0];
  ASSERT_EQ(pred.kind, PredicateExpr::Kind::kOr);
  EXPECT_EQ(pred.operands[0].path.steps[0].name, "ord");
  EXPECT_EQ(pred.operands[1].path.steps[0].name, "android");
}

TEST(XPathParserTest, AllXPathMarkQueriesParse) {
  const char* queries[] = {
      "/site/regions/*/item",
      "/site/closed_auctions/closed_auction/annotation/description/parlist/"
      "listitem/text/keyword",
      "//keyword",
      "/descendant-or-self::listitem/descendant-or-self::keyword",
      "/site/regions/*/item[parent::namerica or parent::samerica]",
      "//keyword/ancestor::listitem",
      "//keyword/ancestor-or-self::mail",
  };
  for (const char* q : queries) {
    EXPECT_TRUE(ParseXPath(q).ok()) << q;
  }
}

TEST(XPathParserTest, Rejections) {
  EXPECT_FALSE(ParseXPath("").ok());
  EXPECT_FALSE(ParseXPath("/").ok());
  EXPECT_FALSE(ParseXPath("/a[").ok());
  EXPECT_FALSE(ParseXPath("/a[b").ok());
  EXPECT_FALSE(ParseXPath("/a]").ok());
  EXPECT_FALSE(ParseXPath("/a/b[(c]").ok());
  EXPECT_FALSE(ParseXPath("/a/!").ok());
}

}  // namespace
}  // namespace natix
