// Snapshot isolation under concurrency: N reader threads sweep queries
// against pinned snapshots while one writer streams mixed updates
// through the store. Every reader must see exactly its pinned version
// (answers equal to an oracle evaluation over that version's
// materialized document), retired page pre-images must survive until
// the last snapshot that can see them closes, and the buffer pool's pin
// accounting must balance. Run under -DNATIX_SANITIZE=thread this is
// the data-race gate for the whole read path.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/heuristics.h"
#include "query/evaluator.h"
#include "query/parser.h"
#include "query/reference_evaluator.h"
#include "storage/file_backend.h"
#include "storage/store.h"
#include "xml/importer.h"

namespace natix {
namespace {

std::string RandomXml(Rng& rng, int ops) {
  static constexpr const char* kNames[] = {"a", "b", "c", "d"};
  std::string xml = "<a>";
  std::vector<const char*> stack = {"a"};
  for (int i = 0; i < ops; ++i) {
    const double dice = rng.NextDouble();
    if (dice < 0.4) {
      const char* name = kNames[rng.NextBounded(4)];
      xml += std::string("<") + name + ">";
      stack.push_back(name);
    } else if (dice < 0.65 && stack.size() > 1) {
      xml += std::string("</") + stack.back() + ">";
      stack.pop_back();
    } else if (dice < 0.85) {
      xml += std::string(1 + rng.NextBounded(40), 't');
      xml += ' ';
    } else {
      xml += std::string("<") + kNames[rng.NextBounded(4)] + " k=\"v\"/>";
    }
  }
  while (!stack.empty()) {
    xml += std::string("</") + stack.back() + ">";
    stack.pop_back();
  }
  return xml;
}

ImportedDocument ImportDoc(const std::string& xml) {
  WeightModel model;
  model.max_node_slots = 16;
  Result<ImportedDocument> imp = ImportXml(xml, model);
  imp.status().CheckOK();
  return std::move(imp).value();
}

NatixStore BuildStore(const ImportedDocument& doc, TotalWeight limit) {
  Result<Partitioning> p = EkmPartition(doc.tree, limit);
  p.status().CheckOK();
  Result<NatixStore> store = NatixStore::Build(doc.Clone(), *p, limit);
  store.status().CheckOK();
  return std::move(store).value();
}

/// One mixed op against the store (~45% insert / 25% delete / 15% move /
/// 15% rename). Runs on the single writer thread; ops that pick an
/// invalid target simply fail status-checked inside the store.
void ApplyMixedOp(NatixStore* store, Rng* rng) {
  const Tree& t = store->tree();
  const auto pick_live = [&]() -> NodeId {
    for (int tries = 0; tries < 64; ++tries) {
      const auto v = static_cast<NodeId>(rng->NextBounded(t.size()));
      if (store->IsLiveNode(v)) return v;
    }
    return 0;
  };
  const uint64_t roll = rng->NextBounded(100);
  if (roll < 45 || store->live_node_count() < 64) {
    const NodeId parent = pick_live();
    const bool text = rng->NextBool(0.4);
    std::string content;
    if (text) content.assign(1 + rng->NextBounded(30), 'u');
    (void)store->InsertBefore(parent, kInvalidNode, text ? "" : "b",
                              text ? NodeKind::kText : NodeKind::kElement,
                              content);
  } else if (roll < 70) {
    const NodeId victim = pick_live();
    if (victim != store->RootNode()) {
      (void)store->DeleteSubtree(victim);
    }
  } else if (roll < 85) {
    const NodeId v = pick_live();
    const NodeId dest = pick_live();
    if (v != store->RootNode()) {
      (void)store->MoveSubtree(v, dest, kInvalidNode);
    }
  } else {
    (void)store->Rename(pick_live(), "rn");
  }
}

constexpr const char* kQueries[] = {
    "/a//b", "//c[b]", "//*[parent::a]/d", "//b/following-sibling::*",
    "//d/ancestor::b",
};

// The acceptance scenario: every reader's answers are equal to an
// independent oracle evaluation over its own pinned version, no matter
// what the writer does in the meantime.
TEST(StoreConcurrencyTest, ReadersStayIsolatedFromMixedWriter) {
  Rng rng(101);
  const ImportedDocument doc = ImportDoc(RandomXml(rng, 500));
  NatixStore store = BuildStore(doc, 16);

  constexpr int kReaders = 3;
  constexpr int kWriterOps = 150;
  std::atomic<bool> stop{false};
  std::atomic<int> sweeps{0};
  std::atomic<int> failures{0};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&store, &stop, &sweeps, &failures] {
      int mine = 0;
      while (!stop.load(std::memory_order_acquire) || mine == 0) {
        const StoreSnapshot snap = store.OpenSnapshot();
        // The oracle: this version's document, reconstructed from the
        // pinned record bytes.
        const Result<ImportedDocument> oracle = snap.MaterializeDocument();
        if (!oracle.ok()) {
          ADD_FAILURE() << "materialize failed: " << oracle.status().ToString();
          ++failures;
          return;
        }
        AccessStats stats;
        StoreQueryEvaluator eval(&snap, &stats);
        for (const char* q : kQueries) {
          const Result<PathExpr> path = ParseXPath(q);
          if (!path.ok()) {
            ++failures;
            return;
          }
          const Result<std::vector<NodeId>> got = eval.Evaluate(*path);
          const Result<std::vector<NodeId>> want =
              EvaluateOnTree(oracle->tree, *path);
          if (!got.ok() || !want.ok() || *got != *want) {
            ADD_FAILURE() << "query " << q << " diverged at version "
                          << snap.version();
            ++failures;
            return;
          }
        }
        ++mine;
        ++sweeps;
      }
    });
  }

  Rng wrng(7);
  for (int i = 0; i < kWriterOps; ++i) {
    ApplyMixedOp(&store, &wrng);
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_GE(sweeps.load(), kReaders);
  EXPECT_EQ(store.open_snapshot_count(), 0u);
  // With every snapshot closed, nothing may still be held...
  const MvccStats m = store.mvcc_stats();
  EXPECT_EQ(m.held_frames, 0u);
  EXPECT_EQ(m.held_bytes, 0u);
  EXPECT_EQ(m.retired_frames, m.reclaimed_frames);
  EXPECT_EQ(m.retired_bytes, m.reclaimed_bytes);
  // ...and the store still answers and survives a full audit.
  ASSERT_TRUE(store.partitioner()->Validate().ok());
}

// Pre-images retire while a snapshot can see them and are reclaimed in
// stages as the open set shrinks -- never earlier.
TEST(StoreConcurrencyTest, RetiredImagesLiveExactlyAsLongAsTheirSnapshots) {
  Rng rng(211);
  const ImportedDocument doc = ImportDoc(RandomXml(rng, 300));
  NatixStore store = BuildStore(doc, 16);

  std::optional<StoreSnapshot> early(store.OpenSnapshot());
  const Result<ImportedDocument> early_doc = early->MaterializeDocument();
  ASSERT_TRUE(early_doc.ok());

  Rng wrng(17);
  for (int i = 0; i < 60; ++i) ApplyMixedOp(&store, &wrng);
  {
    const MvccStats mid = store.mvcc_stats();
    EXPECT_GT(mid.retired_frames, 0u);
    EXPECT_EQ(mid.reclaimed_frames, 0u);
    EXPECT_EQ(mid.held_frames, mid.retired_frames);
  }

  std::optional<StoreSnapshot> late(store.OpenSnapshot());
  for (int i = 0; i < 60; ++i) ApplyMixedOp(&store, &wrng);

  // The early snapshot still reads its version, byte-for-byte.
  {
    const Result<ImportedDocument> again = early->MaterializeDocument();
    ASSERT_TRUE(again.ok()) << again.status().ToString();
    ASSERT_EQ(again->tree.size(), early_doc->tree.size());
    for (NodeId v = 0; v < early_doc->tree.size(); ++v) {
      ASSERT_EQ(again->tree.Parent(v), early_doc->tree.Parent(v)) << v;
      ASSERT_EQ(again->ContentOf(v), early_doc->ContentOf(v)) << v;
    }
  }

  // Closing the early snapshot may reclaim its exclusive pre-images but
  // must keep everything the late snapshot still reads.
  early.reset();
  EXPECT_EQ(store.open_snapshot_count(), 1u);
  {
    const MvccStats m = store.mvcc_stats();
    EXPECT_LE(m.reclaimed_frames, m.retired_frames);
    const Result<ImportedDocument> late_doc = late->MaterializeDocument();
    ASSERT_TRUE(late_doc.ok()) << late_doc.status().ToString();
  }

  // Last close drains the retire list completely.
  late.reset();
  EXPECT_EQ(store.open_snapshot_count(), 0u);
  const MvccStats m = store.mvcc_stats();
  EXPECT_EQ(m.held_frames, 0u);
  EXPECT_EQ(m.retired_frames, m.reclaimed_frames);
  EXPECT_GT(m.snapshot_reads, 0u);
}

// Buffer-pool contract under snapshots: concurrent cursors share frames
// (shared pins), pinned frames are never evicted under pressure, and
// every pin is matched by an unpin once the cursors die.
TEST(StoreConcurrencyTest, PoolPinsBalanceAndPinnedFramesSurviveEviction) {
  Rng rng(307);
  const ImportedDocument doc = ImportDoc(RandomXml(rng, 2000));
  NatixStore store = BuildStore(doc, 16);
  ASSERT_GT(store.page_count(), 4u);

  Result<LruBufferPool> pool = LruBufferPool::Create(2);
  ASSERT_TRUE(pool.ok());
  const StoreSnapshot snap = store.OpenSnapshot();
  {
    AccessStats s1;
    AccessStats s2;
    Navigator a(&snap, &s1, &*pool);
    Navigator b(&snap, &s2, &*pool);
    // Lockstep first: the trailing cursor's crossings pin frames the
    // leading one already holds (shared pins).
    for (NodeId v = 0; v < store.node_count() / 4; ++v) {
      a.JumpTo(v);
      b.JumpTo(v);
      ASSERT_EQ(a.CurrentKind(), b.CurrentKind()) << v;
    }
    // Then park `b` on the root's frame and let `a` churn the pool: once
    // the parked frame ages to the LRU tail, eviction must skip it.
    b.JumpToRoot();
    for (NodeId v = 0; v < store.node_count(); ++v) {
      a.JumpTo(v);
    }
    ASSERT_EQ(b.current(), store.RootNode());
    ASSERT_EQ(b.CurrentKind(), NodeKind::kElement);
    const BufferStats bs = pool->stats();
    EXPECT_GT(bs.shared_pins, 0u);
    EXPECT_GT(bs.evictions, 0u);
    // A 2-frame pool with 2 cursors pinned on frames must have refused
    // at least one eviction of a pinned frame.
    EXPECT_GT(bs.pinned_evictions_refused, 0u);
    EXPECT_EQ(bs.pin_events, bs.unpin_events + 2);
  }
  const BufferStats bs = pool->stats();
  EXPECT_EQ(bs.pin_events, bs.unpin_events);
  EXPECT_EQ(pool->pinned_count(), 0u);
}

// Two snapshots of different versions of one page occupy *distinct*
// frames (the epoch is part of the frame key), so a shared pool serves
// both versions correctly at once.
TEST(StoreConcurrencyTest, SnapshotsOfDifferentVersionsShareOnePool) {
  Rng rng(401);
  const ImportedDocument doc = ImportDoc(RandomXml(rng, 400));
  NatixStore store = BuildStore(doc, 16);

  const StoreSnapshot old_snap = store.OpenSnapshot();
  const Result<ImportedDocument> old_doc = old_snap.MaterializeDocument();
  ASSERT_TRUE(old_doc.ok());

  Rng wrng(19);
  for (int i = 0; i < 80; ++i) ApplyMixedOp(&store, &wrng);
  const StoreSnapshot new_snap = store.OpenSnapshot();
  const Result<ImportedDocument> new_doc = new_snap.MaterializeDocument();
  ASSERT_TRUE(new_doc.ok());
  ASSERT_NE(new_snap.version(), old_snap.version());

  Result<LruBufferPool> pool = LruBufferPool::Create(64);
  ASSERT_TRUE(pool.ok());
  for (const char* q : kQueries) {
    const Result<PathExpr> path = ParseXPath(q);
    ASSERT_TRUE(path.ok());
    AccessStats s1;
    AccessStats s2;
    StoreQueryEvaluator old_eval(&old_snap, &s1, &*pool);
    StoreQueryEvaluator new_eval(&new_snap, &s2, &*pool);
    const Result<std::vector<NodeId>> old_got = old_eval.Evaluate(*path);
    const Result<std::vector<NodeId>> new_got = new_eval.Evaluate(*path);
    ASSERT_TRUE(old_got.ok() && new_got.ok()) << q;
    const Result<std::vector<NodeId>> old_want =
        EvaluateOnTree(old_doc->tree, *path);
    const Result<std::vector<NodeId>> new_want =
        EvaluateOnTree(new_doc->tree, *path);
    ASSERT_TRUE(old_want.ok() && new_want.ok()) << q;
    EXPECT_EQ(*old_got, *old_want) << q;
    EXPECT_EQ(*new_got, *new_want) << q;
  }
}

// wal_stats() and mvcc_stats() are documented safe to poll from
// non-mutator threads; hammer them against a live writer (meaningful
// under TSan; single-threaded it is just a smoke test).
TEST(StoreConcurrencyTest, StatsAreReadableWhileWriting) {
  Rng rng(503);
  const ImportedDocument doc = ImportDoc(RandomXml(rng, 300));
  NatixStore store = BuildStore(doc, 16);
  ASSERT_TRUE(
      store.EnableDurability(std::make_unique<MemoryFileBackend>()).ok());

  std::atomic<bool> stop{false};
  std::thread poller([&store, &stop] {
    uint64_t last_ops = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const WalStats w = store.wal_stats();
      EXPECT_GE(w.op_entries, last_ops);  // monotone
      last_ops = w.op_entries;
      const MvccStats m = store.mvcc_stats();
      EXPECT_GE(m.retired_frames, m.reclaimed_frames);
      (void)store.version();
      (void)store.open_snapshot_count();
    }
  });
  Rng wrng(23);
  for (int i = 0; i < 120; ++i) ApplyMixedOp(&store, &wrng);
  stop.store(true, std::memory_order_release);
  poller.join();
  EXPECT_GT(store.wal_stats().op_entries, 0u);
}

}  // namespace
}  // namespace natix
