#include <gtest/gtest.h>

#include <vector>

#include "core/exact_algorithms.h"
#include "core/flat_dp.h"
#include "tests/test_util.h"

namespace natix {
namespace {

using testing_util::MustBeFeasible;
using testing_util::RandomTree;

DhwOptions ForcedParallel(unsigned threads) {
  DhwOptions opts;
  opts.num_threads = threads;
  opts.min_parallel_nodes = 2;  // exercise the pool even on tiny trees
  opts.task_grain_nodes = 2;    // ...and force real subtree chunking
  return opts;
}

// The headline guarantee: DHW output is byte-identical across thread
// counts — same cardinality, same root weight, and the exact same interval
// sequence (not just an equivalent set).
TEST(DhwParallelTest, DeterministicAcrossThreadCounts) {
  Rng rng(777);
  for (int iter = 0; iter < 40; ++iter) {
    const size_t n = 2 + rng.NextBounded(120);
    const Tree t = RandomTree(rng, n, 6);
    const TotalWeight k = t.MaxNodeWeight() + rng.NextBounded(12);

    const Result<Partitioning> sequential =
        DhwPartition(t, k, ForcedParallel(1));
    ASSERT_TRUE(sequential.ok()) << sequential.status().ToString();
    const PartitionAnalysis base = MustBeFeasible(t, *sequential, k);

    for (const unsigned threads : {2u, 3u, 4u, 8u}) {
      const Result<Partitioning> parallel =
          DhwPartition(t, k, ForcedParallel(threads));
      ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
      ASSERT_EQ(sequential->intervals(), parallel->intervals())
          << TreeToSpec(t) << " K=" << k << " threads=" << threads;
      const PartitionAnalysis a = MustBeFeasible(t, *parallel, k);
      EXPECT_EQ(a.cardinality, base.cardinality);
      EXPECT_EQ(a.root_weight, base.root_weight);
    }
  }
}

TEST(DhwParallelTest, MatchesDefaultEntryPoint) {
  // The stats-taking 3-arg overload and the options overload agree.
  Rng rng(4242);
  const Tree t = RandomTree(rng, 200, 5);
  const TotalWeight k = t.MaxNodeWeight() + 7;
  const Result<Partitioning> a = DhwPartition(t, k);
  const Result<Partitioning> b = DhwPartition(t, k, ForcedParallel(4));
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->intervals(), b->intervals());
}

// The two sequential-fallback gates (see DhwOptions): trees below
// min_parallel_nodes, and trees no larger than one task grain, must run
// on one thread even when the caller asks for many — and forcing both
// knobs down must actually engage the pool. threads_used in the phase
// timings is the observable.
TEST(DhwParallelTest, GrainAndMinNodesGateSequentialFallback) {
  Rng rng(2024);
  const Tree t = RandomTree(rng, 100, 5);
  const TotalWeight k = t.MaxNodeWeight() + 4;

  // Default thresholds (4096): a 100-node tree stays sequential.
  {
    DhwOptions opts;
    opts.num_threads = 4;
    DhwPhaseTimings timings;
    ASSERT_TRUE(DhwPartition(t, k, opts, nullptr, &timings).ok());
    EXPECT_EQ(timings.threads_used, 1u);
  }
  // min_parallel_nodes passed, but the whole tree fits in one grain:
  // the chunked scheduler would emit a single task, so stay sequential.
  {
    DhwOptions opts;
    opts.num_threads = 4;
    opts.min_parallel_nodes = 2;
    opts.task_grain_nodes = 100;
    DhwPhaseTimings timings;
    ASSERT_TRUE(DhwPartition(t, k, opts, nullptr, &timings).ok());
    EXPECT_EQ(timings.threads_used, 1u);
  }
  // num_threads = 1 always wins, whatever the thresholds say.
  {
    DhwPhaseTimings timings;
    ASSERT_TRUE(DhwPartition(t, k, ForcedParallel(1), nullptr, &timings).ok());
    EXPECT_EQ(timings.threads_used, 1u);
  }
  // Both gates forced open: the pool really runs.
  {
    DhwPhaseTimings timings;
    ASSERT_TRUE(DhwPartition(t, k, ForcedParallel(4), nullptr, &timings).ok());
    EXPECT_GT(timings.threads_used, 1u);
    // On the chunked path, leaf seeding folds into the solve tasks.
    EXPECT_EQ(timings.leaf_ms, 0.0);
  }
}

// Per-thread DpStats are merged after the run; the totals must not depend
// on how the nodes were distributed over workers.
TEST(DhwParallelTest, StatsAggregateAcrossThreads) {
  Rng rng(99);
  const Tree t = RandomTree(rng, 300, 4);
  const TotalWeight k = t.MaxNodeWeight() + 9;

  DpStats sequential;
  ASSERT_TRUE(DhwPartition(t, k, ForcedParallel(1), &sequential).ok());
  for (const unsigned threads : {2u, 4u}) {
    DpStats parallel;
    ASSERT_TRUE(DhwPartition(t, k, ForcedParallel(threads), &parallel).ok());
    EXPECT_EQ(parallel.inner_nodes, sequential.inner_nodes);
    EXPECT_EQ(parallel.rows, sequential.rows);
    EXPECT_EQ(parallel.cells, sequential.cells);
    EXPECT_EQ(parallel.full_table_cells, sequential.full_table_cells);
  }
}

std::vector<FlatDp::IntervalChoice> SolveOn(FlatDpWorkspace* ws,
                                            Weight node_weight,
                                            const std::vector<Weight>& w,
                                            const std::vector<Weight>& d,
                                            TotalWeight limit,
                                            uint32_t* rootweight) {
  FlatDp dp(node_weight, w.data(), d.data(), w.size(), limit, ws);
  dp.EnsureSeed(node_weight);
  const FlatDp::Entry* e = dp.FinalEntry(node_weight);
  *rootweight = e->rootweight;
  return dp.ExtractChain(node_weight);
}

bool SameChains(const std::vector<FlatDp::IntervalChoice>& a,
                const std::vector<FlatDp::IntervalChoice>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].begin != b[i].begin || a[i].end != b[i].end ||
        a[i].nearly != b[i].nearly) {
      return false;
    }
  }
  return true;
}

// Workspace reuse: a second flat problem solved on a warmed-up workspace
// must be unaffected by the first one's stale rows, frontier marks and
// window contents.
TEST(DhwParallelTest, WorkspaceReuseIsStateless) {
  const std::vector<Weight> w1 = {4, 4, 1, 3};
  const std::vector<Weight> d1 = {2, 0, 0, 1};
  const std::vector<Weight> w2 = {2, 5, 2, 2, 1};
  const std::vector<Weight> d2 = {0, 3, 1, 0, 0};

  // Reference results from fresh workspaces.
  FlatDpWorkspace fresh1, fresh2;
  uint32_t rw1 = 0, rw2 = 0;
  const auto chain1 = SolveOn(&fresh1, 3, w1, d1, 6, &rw1);
  const auto chain2 = SolveOn(&fresh2, 2, w2, d2, 6, &rw2);

  // Same two problems back-to-back on one shared workspace, in both
  // orders, plus a repeat of the first to catch same-limit staleness.
  FlatDpWorkspace shared;
  uint32_t rw = 0;
  EXPECT_TRUE(SameChains(SolveOn(&shared, 3, w1, d1, 6, &rw), chain1));
  EXPECT_EQ(rw, rw1);
  EXPECT_TRUE(SameChains(SolveOn(&shared, 2, w2, d2, 6, &rw), chain2));
  EXPECT_EQ(rw, rw2);
  EXPECT_TRUE(SameChains(SolveOn(&shared, 3, w1, d1, 6, &rw), chain1));
  EXPECT_EQ(rw, rw1);
}

// Randomized version of the reuse test against the owning (private
// workspace) constructor, across varying limits on the same workspace.
TEST(DhwParallelTest, WorkspaceReuseMatchesPrivateWorkspace) {
  Rng rng(1234);
  FlatDpWorkspace shared;
  for (int iter = 0; iter < 200; ++iter) {
    const TotalWeight limit = 2 + rng.NextBounded(30);
    const Weight node_weight =
        static_cast<Weight>(rng.NextInRange(1, static_cast<Weight>(limit)));
    const size_t n = rng.NextBounded(12);
    std::vector<Weight> weights, deltas;
    for (size_t i = 0; i < n; ++i) {
      const Weight w =
          static_cast<Weight>(rng.NextInRange(1, static_cast<Weight>(limit)));
      weights.push_back(w);
      // ΔW can never exceed w - 1 (the nearly optimal root keeps the node).
      deltas.push_back(w > 1 ? static_cast<Weight>(rng.NextBounded(w)) : 0);
    }

    uint32_t rw_shared = 0, rw_private = 0;
    const auto shared_chain =
        SolveOn(&shared, node_weight, weights, deltas, limit, &rw_shared);

    FlatDp dp(node_weight, weights, deltas, limit);  // private workspace
    dp.EnsureSeed(node_weight);
    rw_private = dp.FinalEntry(node_weight)->rootweight;
    const auto private_chain = dp.ExtractChain(node_weight);

    EXPECT_EQ(rw_shared, rw_private) << "iter " << iter;
    EXPECT_TRUE(SameChains(shared_chain, private_chain)) << "iter " << iter;
  }
}

// Two FlatDp runs on one workspace where the second node's reachable rows
// are a strict subset of the first's: any stale row reuse would surface as
// a wrong (already filled, wrong-seed) table.
TEST(DhwParallelTest, SecondRunDoesNotSeeFirstRunsRows) {
  FlatDpWorkspace ws;
  {
    FlatDp dp(1, std::vector<Weight>{2, 3, 4}, {}, 25, &ws);
    dp.EnsureSeed(1);
    ASSERT_NE(dp.FinalEntry(1), nullptr);
    EXPECT_GT(dp.RowCount(), 1u);
  }
  {
    // Same s values reachable, different child weights: must refill.
    FlatDp dp(1, std::vector<Weight>{9, 9, 9}, {}, 25, &ws);
    dp.EnsureSeed(1);
    const FlatDp::Entry* e = dp.FinalEntry(1);
    ASSERT_NE(e, nullptr);
    // 1 + 9 + 9 + 9 = 28 > 25: at least one interval is forced.
    EXPECT_GT(e->card, 0u);
  }
}

}  // namespace
}  // namespace natix
