#include <gtest/gtest.h>

#include "core/exact_algorithms.h"
#include "tests/test_util.h"

namespace natix {
namespace {

using testing_util::Fig6Tree;
using testing_util::MustBeFeasible;
using testing_util::MustParse;

TEST(GhdwTest, SingleNode) {
  const Tree t = MustParse("a:3");
  const Result<Partitioning> p = GhdwPartition(t, 5);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->size(), 1u);
}

TEST(GhdwTest, Fig6GreedyFailureProducesFourPartitions) {
  // Sec. 3.3.1, Fig. 6 (K = 5): GHDW greedily keeps d, e with c, which
  // forces b and f into partitions of their own: {(a,a),(b,b),(c,c),(f,f)}.
  const Tree t = Fig6Tree();
  const Result<Partitioning> p = GhdwPartition(t, 5);
  ASSERT_TRUE(p.ok());
  const PartitionAnalysis a = MustBeFeasible(t, *p, 5);
  EXPECT_EQ(a.cardinality, 4u);
}

TEST(GhdwTest, MatchesFdwOnFlatTrees) {
  Rng rng(99);
  for (int iter = 0; iter < 60; ++iter) {
    const size_t n = 2 + rng.NextBounded(20);
    const Tree t = testing_util::RandomFlatTree(rng, n, 6);
    const TotalWeight k = t.MaxNodeWeight() + rng.NextBounded(10);
    const Result<Partitioning> fdw = FdwPartition(t, k);
    const Result<Partitioning> ghdw = GhdwPartition(t, k);
    ASSERT_TRUE(fdw.ok());
    ASSERT_TRUE(ghdw.ok());
    const PartitionAnalysis af = MustBeFeasible(t, *fdw, k);
    const PartitionAnalysis ag = MustBeFeasible(t, *ghdw, k);
    EXPECT_EQ(ag.cardinality, af.cardinality) << TreeToSpec(t) << " K=" << k;
    EXPECT_EQ(ag.root_weight, af.root_weight) << TreeToSpec(t) << " K=" << k;
  }
}

TEST(GhdwTest, FeasibleOnDeepChain) {
  // A path of 30 unit-weight nodes with K = 4 needs ceil(30/4) = 8
  // partitions; GHDW achieves exactly that on chains.
  Tree t;
  NodeId v = t.AddRoot(1);
  for (int i = 0; i < 29; ++i) v = t.AppendChild(v, 1);
  const Result<Partitioning> p = GhdwPartition(t, 4);
  ASSERT_TRUE(p.ok());
  const PartitionAnalysis a = MustBeFeasible(t, *p, 4);
  EXPECT_EQ(a.cardinality, 8u);
}

TEST(GhdwTest, WideStar) {
  // Root 1 + 100 unit children, K = 10: root partition takes 9 children,
  // the remaining 91 need ceil(91/10) = 10 intervals => 11 partitions.
  Tree t;
  t.AddRoot(1);
  for (int i = 0; i < 100; ++i) t.AppendChild(t.root(), 1);
  const Result<Partitioning> p = GhdwPartition(t, 10);
  ASSERT_TRUE(p.ok());
  const PartitionAnalysis a = MustBeFeasible(t, *p, 10);
  EXPECT_EQ(a.cardinality, 11u);
}

TEST(GhdwTest, RejectsOversizedNode) {
  const Tree t = MustParse("a:2(b:9)");
  EXPECT_FALSE(GhdwPartition(t, 5).ok());
}

TEST(GhdwTest, WholeTreeFitsInOnePartition) {
  const Tree t = testing_util::Fig3Tree();  // total weight 14
  const Result<Partitioning> p = GhdwPartition(t, 14);
  ASSERT_TRUE(p.ok());
  const PartitionAnalysis a = MustBeFeasible(t, *p, 14);
  EXPECT_EQ(a.cardinality, 1u);
  EXPECT_EQ(a.root_weight, 14u);
}

TEST(GhdwTest, StatsCountInnerNodes) {
  const Tree t = Fig6Tree();
  DpStats stats;
  ASSERT_TRUE(GhdwPartition(t, 5, &stats).ok());
  EXPECT_EQ(stats.inner_nodes, 2u);  // a and c
  EXPECT_GT(stats.rows, 0u);
  EXPECT_LE(stats.cells, stats.full_table_cells);
}

TEST(GhdwTest, FeasibleOnRandomTrees) {
  Rng rng(4242);
  for (int iter = 0; iter < 80; ++iter) {
    const size_t n = 2 + rng.NextBounded(60);
    const Tree t = testing_util::RandomTree(rng, n, 8);
    const TotalWeight k = t.MaxNodeWeight() + rng.NextBounded(12);
    const Result<Partitioning> p = GhdwPartition(t, k);
    ASSERT_TRUE(p.ok()) << TreeToSpec(t) << " K=" << k;
    MustBeFeasible(t, *p, k, TreeToSpec(t));
  }
}

}  // namespace
}  // namespace natix
