// The evicted operating mode: ReleaseDocument() drops the in-memory
// document and the store must keep answering navigation, queries,
// updates, checkpoints and recovery from record bytes alone, with
// results (and access statistics) identical to a document-resident
// store.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/heuristics.h"
#include "query/evaluator.h"
#include "query/parser.h"
#include "query/reference_evaluator.h"
#include "storage/file_backend.h"
#include "storage/store.h"
#include "xml/importer.h"

namespace natix {
namespace {

std::string RandomXml(Rng& rng, int ops) {
  static constexpr const char* kNames[] = {"a", "b", "c", "d"};
  std::string xml = "<a>";
  std::vector<const char*> stack = {"a"};
  for (int i = 0; i < ops; ++i) {
    const double dice = rng.NextDouble();
    if (dice < 0.4) {
      const char* name = kNames[rng.NextBounded(4)];
      xml += std::string("<") + name + ">";
      stack.push_back(name);
    } else if (dice < 0.65 && stack.size() > 1) {
      xml += std::string("</") + stack.back() + ">";
      stack.pop_back();
    } else if (dice < 0.85) {
      xml += std::string(1 + rng.NextBounded(40), 't');
      xml += ' ';
    } else {
      xml += std::string("<") + kNames[rng.NextBounded(4)] + " k=\"v\"/>";
    }
  }
  while (!stack.empty()) {
    xml += std::string("</") + stack.back() + ">";
    stack.pop_back();
  }
  return xml;
}

// Imports with the weight model capped at the partition limit, so big
// text runs externalize instead of making partitioning infeasible.
ImportedDocument ImportDoc(const std::string& xml) {
  WeightModel model;
  model.max_node_slots = 16;
  Result<ImportedDocument> imp = ImportXml(xml, model);
  imp.status().CheckOK();
  return std::move(imp).value();
}

NatixStore BuildStore(const ImportedDocument& doc, TotalWeight limit) {
  Result<Partitioning> p = EkmPartition(doc.tree, limit);
  p.status().CheckOK();
  Result<NatixStore> store = NatixStore::Build(doc.Clone(), *p, limit);
  store.status().CheckOK();
  return std::move(store).value();
}

void ExpectDocumentsEqual(const ImportedDocument& got,
                          const ImportedDocument& want) {
  ASSERT_EQ(got.tree.size(), want.tree.size());
  for (NodeId v = 0; v < want.tree.size(); ++v) {
    EXPECT_EQ(got.tree.Parent(v), want.tree.Parent(v)) << v;
    EXPECT_EQ(got.tree.FirstChild(v), want.tree.FirstChild(v)) << v;
    EXPECT_EQ(got.tree.NextSibling(v), want.tree.NextSibling(v)) << v;
    EXPECT_EQ(got.tree.PrevSibling(v), want.tree.PrevSibling(v)) << v;
    EXPECT_EQ(got.tree.WeightOf(v), want.tree.WeightOf(v)) << v;
    EXPECT_EQ(got.tree.KindOf(v), want.tree.KindOf(v)) << v;
    EXPECT_EQ(got.tree.LabelOf(v), want.tree.LabelOf(v)) << v;
    EXPECT_EQ(got.ContentOf(v), want.ContentOf(v)) << v;
  }
}

std::vector<NodeId> RunQuery(const NatixStore& store, const std::string& q,
                             AccessStats* stats,
                             LruBufferPool* pool = nullptr) {
  const Result<PathExpr> path = ParseXPath(q);
  path.status().CheckOK();
  StoreQueryEvaluator eval(&store, stats, pool);
  Result<std::vector<NodeId>> result = eval.Evaluate(*path);
  result.status().CheckOK();
  return *std::move(result);
}

TEST(StoreEvictTest, ReleaseThenEnsureRoundTripsDocument) {
  Rng rng(11);
  for (int iter = 0; iter < 8; ++iter) {
    const std::string xml = RandomXml(rng, 60 + iter * 25);
    const ImportedDocument doc = ImportDoc(xml);
    NatixStore store = BuildStore(doc, 16);
    ASSERT_TRUE(store.has_document());
    ASSERT_TRUE(store.ReleaseDocument().ok());
    EXPECT_FALSE(store.has_document());
    EXPECT_EQ(store.node_count(), doc.tree.size());
    // Release is idempotent.
    ASSERT_TRUE(store.ReleaseDocument().ok());
    ASSERT_TRUE(store.EnsureDocument().ok());
    ASSERT_TRUE(store.has_document());
    ExpectDocumentsEqual(store.document(), doc);
  }
}

TEST(StoreEvictTest, ReleasedQueriesMatchResidentAndReference) {
  Rng rng(23);
  static constexpr const char* kQueries[] = {
      "/a//b", "//c[b]", "//*[parent::a]/d", "//b/following-sibling::*",
      "//d/ancestor::b",
  };
  for (int iter = 0; iter < 6; ++iter) {
    const std::string xml = RandomXml(rng, 120);
    const ImportedDocument doc = ImportDoc(xml);
    NatixStore resident = BuildStore(doc, 16);
    NatixStore released = BuildStore(doc, 16);
    ASSERT_TRUE(released.ReleaseDocument().ok());
    for (const char* q : kQueries) {
      const Result<PathExpr> path = ParseXPath(q);
      ASSERT_TRUE(path.ok()) << q;
      const Result<std::vector<NodeId>> reference =
          EvaluateOnTree(doc.tree, *path);
      ASSERT_TRUE(reference.ok()) << q;
      AccessStats rstats;
      AccessStats estats;
      EXPECT_EQ(RunQuery(resident, q, &rstats), *reference) << q;
      EXPECT_EQ(RunQuery(released, q, &estats), *reference) << q;
      // The counters the cost model consumes must be identical: release
      // changes where bytes live, never how navigation is charged.
      EXPECT_EQ(estats.intra_moves, rstats.intra_moves) << q;
      EXPECT_EQ(estats.record_crossings, rstats.record_crossings) << q;
      EXPECT_EQ(estats.page_switches, rstats.page_switches) << q;
    }
  }
}

TEST(StoreEvictTest, RandomWalkMatchesTreeOracleUnderTinyPool) {
  Rng rng(37);
  const std::string xml = RandomXml(rng, 3000);
  const ImportedDocument doc = ImportDoc(xml);
  NatixStore store = BuildStore(doc, 16);
  ASSERT_TRUE(store.ReleaseDocument().ok());
  // The working set must exceed the pool or the eviction check is vacuous.
  ASSERT_GT(store.page_count(), 2u);
  Result<LruBufferPool> pool = LruBufferPool::Create(2);
  ASSERT_TRUE(pool.ok());
  AccessStats stats;
  Navigator nav(&store, &stats, &*pool);
  NodeId oracle = 0;
  for (int step = 0; step < 4000; ++step) {
    const uint64_t dice = rng.NextBounded(5);
    bool moved = false;
    NodeId target = kInvalidNode;
    switch (dice) {
      case 0:
        moved = nav.ToFirstChild();
        target = doc.tree.FirstChild(oracle);
        break;
      case 1:
        moved = nav.ToNextSibling();
        target = doc.tree.NextSibling(oracle);
        break;
      case 2:
        moved = nav.ToPrevSibling();
        target = doc.tree.PrevSibling(oracle);
        break;
      case 3:
        moved = nav.ToParent();
        target = doc.tree.Parent(oracle);
        break;
      default:
        nav.JumpToRoot();
        moved = true;
        target = 0;
        break;
    }
    ASSERT_EQ(moved, target != kInvalidNode) << "step " << step;
    if (moved) oracle = target;
    ASSERT_EQ(nav.current(), oracle) << "step " << step;
    EXPECT_EQ(nav.CurrentKind(), doc.tree.KindOf(oracle)) << "step " << step;
    EXPECT_EQ(store.LabelNameOf(nav.CurrentLabelId()),
              doc.tree.LabelOf(oracle))
        << "step " << step;
  }
  // Random access to every node: the walk above is root-anchored, but
  // this sweep provably touches more pages than the pool holds.
  for (NodeId v = 0; v < store.node_count(); ++v) {
    nav.JumpTo(v);
    ASSERT_EQ(nav.current(), v);
    EXPECT_EQ(nav.CurrentKind(), doc.tree.KindOf(v)) << v;
    EXPECT_EQ(store.LabelNameOf(nav.CurrentLabelId()), doc.tree.LabelOf(v))
        << v;
  }
  {
    // Pin accounting mid-run: the cursor holds exactly its current frame
    // (one pin more than released so far), and pressure from this walk
    // never evicted the pinned frame out from under it.
    const BufferStats bs = pool->stats();
    EXPECT_GT(bs.evictions, 0u);
    EXPECT_GT(bs.pin_events, 0u);
    EXPECT_EQ(bs.pin_events, bs.unpin_events + 1);
    EXPECT_EQ(pool->pinned_count(), 1u);
  }
  // A navigator over the same store shares residency but re-pins frames
  // for itself; after both cursors die every pin is matched.
  {
    AccessStats stats2;
    Navigator nav2(&store, &stats2, &*pool);
    for (NodeId v = 0; v < store.node_count(); v += 7) nav2.JumpTo(v);
  }
  nav.JumpToRoot();  // repositions; the old frame is released
  const BufferStats bs = pool->stats();
  EXPECT_EQ(bs.pin_events, bs.unpin_events + 1);
  EXPECT_LE(pool->pinned_count(), 1u);
}

TEST(StoreEvictTest, InsertsOnReleasedStoreMatchResidentStore) {
  Rng rng(53);
  const std::string xml = RandomXml(rng, 100);
  const ImportedDocument doc = ImportDoc(xml);
  NatixStore resident = BuildStore(doc, 16);
  NatixStore released = BuildStore(doc, 16);
  ASSERT_TRUE(released.ReleaseDocument().ok());
  EXPECT_EQ(released.version(), resident.version());

  // The same insert stream against both stores. The released store must
  // rematerialize transparently and land on identical NodeIds.
  Rng stream(7);
  for (int i = 0; i < 40; ++i) {
    const NodeId parent = static_cast<NodeId>(
        stream.NextBounded(resident.node_count()));
    const std::string label(1, static_cast<char>('a' + stream.NextBounded(4)));
    const std::string content(stream.NextBounded(30), 'y');
    const Result<NodeId> a =
        resident.InsertBefore(parent, kInvalidNode, label,
                              NodeKind::kElement, content);
    const Result<NodeId> b =
        released.InsertBefore(parent, kInvalidNode, label,
                              NodeKind::kElement, content);
    ASSERT_EQ(a.ok(), b.ok())
        << i << " resident: " << a.status().ToString()
        << " released: " << b.status().ToString();
    if (!a.ok()) continue;
    EXPECT_EQ(*a, *b) << i;
    // Every third insert, drop the document again mid-stream.
    if (i % 3 == 2) {
      ASSERT_TRUE(released.ReleaseDocument().ok());
    }
  }
  EXPECT_EQ(released.version(), resident.version());
  EXPECT_GT(released.version(), 0u);

  Result<ImportedDocument> left = released.SnapshotDocument();
  Result<ImportedDocument> right = resident.SnapshotDocument();
  ASSERT_TRUE(left.ok() && right.ok());
  ExpectDocumentsEqual(*left, *right);

  // Queries over the mutated stores agree too (the evaluator's rank cache
  // must refresh on the released store's version bumps).
  for (const char* q : {"//b", "//*[c]", "//d/ancestor::a"}) {
    AccessStats s1;
    AccessStats s2;
    EXPECT_EQ(RunQuery(released, q, &s1), RunQuery(resident, q, &s2)) << q;
  }
}

TEST(StoreEvictTest, OverflowContentSurvivesReleaseCycles) {
  // One huge text node forces overflow storage; its content must survive
  // release (records keep only the length; the store parks the bytes).
  const std::string big(100000, 'Z');
  const std::string xml = "<a><b>" + big + "</b><c>small</c></a>";
  const ImportedDocument doc = ImportDoc(xml);
  ASSERT_GT(doc.overflow_nodes, 0u);
  NatixStore store = BuildStore(doc, 16);
  for (int cycle = 0; cycle < 3; ++cycle) {
    ASSERT_TRUE(store.ReleaseDocument().ok());
    ASSERT_TRUE(store.EnsureDocument().ok());
  }
  ExpectDocumentsEqual(store.document(), doc);
  EXPECT_EQ(store.document().overflow_nodes, doc.overflow_nodes);
  EXPECT_EQ(store.document().overflow_bytes, doc.overflow_bytes);
}

TEST(StoreEvictTest, CheckpointAndRecoverReleasedStore) {
  Rng rng(71);
  const std::string xml = RandomXml(rng, 150);
  const ImportedDocument doc = ImportDoc(xml);
  NatixStore store = BuildStore(doc, 16);

  auto mem = std::make_unique<MemoryFileBackend>();
  auto disk = mem->disk();
  ASSERT_TRUE(store.EnableDurability(std::move(mem)).ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(store.InsertBefore(0, kInvalidNode, "b").ok());
  }
  // Checkpoint a *released* store: the checkpoint carries no document.
  ASSERT_TRUE(store.ReleaseDocument().ok());
  ASSERT_TRUE(store.Checkpoint().ok());
  // Op tail after the checkpoint, then release again so the log describes
  // a store that ended its run evicted.
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(store.InsertBefore(0, kInvalidNode, "c").ok());
  }
  // Recovery below reads the shared disk while the store is still alive;
  // drain the group-commit buffer so the tail ops are on it.
  ASSERT_TRUE(store.SyncWal().ok());
  ASSERT_TRUE(store.ReleaseDocument().ok());

  Result<NatixStore> recovered =
      NatixStore::Recover(std::make_unique<MemoryFileBackend>(disk));
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered->node_count(), store.node_count());
  EXPECT_EQ(recovered->version(), store.version());

  Result<ImportedDocument> left = recovered->SnapshotDocument();
  Result<ImportedDocument> right = store.SnapshotDocument();
  ASSERT_TRUE(left.ok() && right.ok());
  ExpectDocumentsEqual(*left, *right);

  // The recovered store answers queries without ever having held the
  // original in-memory document.
  for (const char* q : {"/a/b", "/a/c", "//*"}) {
    AccessStats s1;
    AccessStats s2;
    EXPECT_EQ(RunQuery(*recovered, q, &s1), RunQuery(store, q, &s2)) << q;
  }
}

TEST(StoreEvictTest, FlushedPageFileServesColdReads) {
  Rng rng(83);
  const std::string xml = RandomXml(rng, 200);
  const ImportedDocument doc = ImportDoc(xml);
  NatixStore store = BuildStore(doc, 16);
  ASSERT_TRUE(store.ReleaseDocument().ok());

  MemoryFileBackend pagefile;
  ASSERT_TRUE(store.FlushPagesTo(&pagefile).ok());
  const FilePageSource source(&pagefile, store.page_size(),
                              store.page_provider());

  const Result<PathExpr> path = ParseXPath("//b/ancestor::*");
  ASSERT_TRUE(path.ok());
  const Result<std::vector<NodeId>> reference =
      EvaluateOnTree(doc.tree, *path);
  ASSERT_TRUE(reference.ok());

  Result<LruBufferPool> pool = LruBufferPool::Create(2);
  ASSERT_TRUE(pool.ok());
  AccessStats stats;
  StoreQueryEvaluator eval(&store, &stats, &*pool, &source);
  const Result<std::vector<NodeId>> result = eval.Evaluate(*path);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, *reference);
  // Misses really read bytes from the flushed file.
  EXPECT_GT(pool->stats().misses, 0u);
  EXPECT_GT(pool->stats().bytes_read, 0u);
}

}  // namespace
}  // namespace natix
