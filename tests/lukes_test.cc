#include "core/lukes.h"

#include <gtest/gtest.h>

#include "core/exact_algorithms.h"
#include "core/heuristics.h"
#include "tests/test_util.h"

namespace natix {
namespace {

using testing_util::MustBeFeasible;
using testing_util::MustParse;

TEST(LukesTest, SingleNode) {
  const Tree t = MustParse("a:3");
  const Result<Partitioning> p = LukesPartition(t, 5);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->size(), 1u);
  EXPECT_EQ(*LukesOptimalValue(t, 5), 0u);
}

TEST(LukesTest, WholeTreeFits) {
  const Tree t = MustParse("a:1(b:1(c:1) d:1)");
  const Result<Partitioning> p = LukesPartition(t, 10);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(MustBeFeasible(t, *p, 10).cardinality, 1u);
  // All 3 edges kept.
  EXPECT_EQ(*LukesOptimalValue(t, 10), 3u);
}

TEST(LukesTest, ValueEqualsNodesMinusPartitions) {
  // Every partition is connected, so a p-partition solution keeps exactly
  // n - p edges; the optimal value certifies the partition count.
  Rng rng(31);
  for (int iter = 0; iter < 40; ++iter) {
    const Tree t = testing_util::RandomTree(rng, 2 + rng.NextBounded(40), 5);
    const TotalWeight k = t.MaxNodeWeight() + rng.NextBounded(10);
    const Result<Partitioning> p = LukesPartition(t, k);
    ASSERT_TRUE(p.ok()) << TreeToSpec(t);
    const PartitionAnalysis a = MustBeFeasible(t, *p, k, TreeToSpec(t));
    const Result<uint64_t> value = LukesOptimalValue(t, k);
    ASSERT_TRUE(value.ok());
    EXPECT_EQ(*value, t.size() - a.cardinality) << TreeToSpec(t);
  }
}

TEST(LukesTest, MatchesKmCardinality) {
  // With unit edge values Lukes minimizes the number of parent-child
  // partitions -- the same objective KM provably solves (Sec. 4.3.3), so
  // the cardinalities must agree on every input.
  Rng rng(32);
  for (int iter = 0; iter < 60; ++iter) {
    const Tree t = testing_util::RandomTree(rng, 2 + rng.NextBounded(50), 6);
    const TotalWeight k = t.MaxNodeWeight() + rng.NextBounded(12);
    const Result<Partitioning> lukes = LukesPartition(t, k);
    const Result<Partitioning> km = KmPartition(t, k);
    ASSERT_TRUE(lukes.ok() && km.ok()) << TreeToSpec(t);
    EXPECT_EQ(MustBeFeasible(t, *lukes, k).cardinality,
              MustBeFeasible(t, *km, k).cardinality)
        << TreeToSpec(t) << " K=" << k;
  }
}

TEST(LukesTest, NeverBeatsSiblingPartitioning) {
  Rng rng(33);
  for (int iter = 0; iter < 40; ++iter) {
    const Tree t = testing_util::RandomTree(rng, 2 + rng.NextBounded(40), 5);
    const TotalWeight k = t.MaxNodeWeight() + rng.NextBounded(10);
    const Result<Partitioning> lukes = LukesPartition(t, k);
    const Result<Partitioning> dhw = DhwPartition(t, k);
    ASSERT_TRUE(lukes.ok() && dhw.ok());
    EXPECT_GE(MustBeFeasible(t, *lukes, k).cardinality,
              MustBeFeasible(t, *dhw, k).cardinality)
        << TreeToSpec(t);
  }
}

TEST(LukesTest, SiblingMergeExample) {
  // Two sibling leaves of weight 2 under a heavy root, K = 5: Lukes (like
  // KM) needs 3 partitions, DHW merges the siblings into one interval.
  const Tree t = MustParse("a:4(b:2 c:2)");
  const Result<Partitioning> p = LukesPartition(t, 5);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(MustBeFeasible(t, *p, 5).cardinality, 3u);
}

TEST(LukesTest, SingleNodeIntervalsOnly) {
  Rng rng(34);
  const Tree t = testing_util::RandomTree(rng, 60, 4);
  const Result<Partitioning> p = LukesPartition(t, 8);
  ASSERT_TRUE(p.ok());
  for (const SiblingInterval& iv : *p) EXPECT_EQ(iv.first, iv.last);
}

TEST(LukesTest, RejectsOversizedNode) {
  const Tree t = MustParse("a:2(b:9)");
  EXPECT_FALSE(LukesPartition(t, 5).ok());
}

TEST(LukesTest, MemoryGuard) {
  // n * K above the table cap must be rejected, not thrash.
  Tree t;
  t.AddRoot(1);
  for (int i = 0; i < 1000; ++i) t.AppendChild(t.root(), 1);
  const Result<Partitioning> p = LukesPartition(t, 1 << 20);
  EXPECT_FALSE(p.ok());
  EXPECT_EQ(p.status().code(), StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace natix
