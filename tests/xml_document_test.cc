#include "xml/document.h"

#include <gtest/gtest.h>

namespace natix {
namespace {

XmlDocument MustParse(std::string_view xml, const XmlParseOptions& opts = {}) {
  Result<XmlDocument> doc = XmlDocument::Parse(xml, opts);
  EXPECT_TRUE(doc.ok()) << doc.status().ToString();
  return std::move(doc).value();
}

TEST(XmlDocumentTest, SingleElement) {
  const XmlDocument doc = MustParse("<root/>");
  ASSERT_EQ(doc.size(), 1u);
  EXPECT_EQ(doc.NameOf(doc.root()), "root");
  EXPECT_EQ(doc.KindOf(doc.root()), XmlNodeKind::kElement);
}

TEST(XmlDocumentTest, AttributesBecomeLeadingChildren) {
  const XmlDocument doc = MustParse("<a x=\"1\" y=\"2\"><b/></a>");
  ASSERT_EQ(doc.size(), 4u);
  const auto first = doc.FirstChild(doc.root());
  EXPECT_EQ(doc.KindOf(first), XmlNodeKind::kAttribute);
  EXPECT_EQ(doc.NameOf(first), "x");
  EXPECT_EQ(doc.ContentOf(first), "1");
  const auto second = doc.NextSibling(first);
  EXPECT_EQ(doc.NameOf(second), "y");
  const auto third = doc.NextSibling(second);
  EXPECT_EQ(doc.KindOf(third), XmlNodeKind::kElement);
  EXPECT_EQ(doc.NameOf(third), "b");
}

TEST(XmlDocumentTest, TextNodes) {
  const XmlDocument doc = MustParse("<a>hi<b/>there</a>");
  EXPECT_EQ(doc.CountKind(XmlNodeKind::kText), 2u);
  const auto t1 = doc.FirstChild(doc.root());
  EXPECT_EQ(doc.ContentOf(t1), "hi");
}

TEST(XmlDocumentTest, WhitespaceTextSkippedByDefault) {
  const XmlDocument doc = MustParse("<a>\n  <b/>\n</a>");
  EXPECT_EQ(doc.CountKind(XmlNodeKind::kText), 0u);
  EXPECT_EQ(doc.size(), 2u);
}

TEST(XmlDocumentTest, WhitespaceTextKeptOnRequest) {
  XmlParseOptions opts;
  opts.skip_whitespace_text = false;
  const XmlDocument doc = MustParse("<a>\n  <b/>\n</a>", opts);
  EXPECT_EQ(doc.CountKind(XmlNodeKind::kText), 2u);
}

TEST(XmlDocumentTest, CommentsDroppedByDefault) {
  const XmlDocument doc = MustParse("<a><!-- c --></a>");
  EXPECT_EQ(doc.size(), 1u);
}

TEST(XmlDocumentTest, CommentsKeptOnRequest) {
  XmlParseOptions opts;
  opts.keep_comments = true;
  const XmlDocument doc = MustParse("<a><!-- c --><?pi data?></a>", opts);
  EXPECT_EQ(doc.CountKind(XmlNodeKind::kComment), 1u);
  EXPECT_EQ(doc.CountKind(XmlNodeKind::kProcessingInstruction), 1u);
}

TEST(XmlDocumentTest, SerializeRoundTrip) {
  const std::string xml =
      "<site><regions><item id=\"i1\">A &amp; B</item><item "
      "id=\"i2\"/></regions></site>";
  const XmlDocument doc = MustParse(xml);
  EXPECT_EQ(doc.Serialize(), xml);
}

TEST(XmlDocumentTest, SerializeEscapesAttributeQuotes) {
  const XmlDocument doc = MustParse("<a t=\"say &quot;hi&quot;\"/>");
  EXPECT_EQ(doc.Serialize(), "<a t=\"say &quot;hi&quot;\"/>");
}

TEST(XmlDocumentTest, SerializeReparseStable) {
  const std::string xml =
      "<a x=\"1\"><b>text &lt;here&gt;</b><c/><d y=\"2\">more</d></a>";
  const XmlDocument doc = MustParse(xml);
  const std::string once = doc.Serialize();
  const XmlDocument again = MustParse(once);
  EXPECT_EQ(again.Serialize(), once);
  EXPECT_EQ(again.size(), doc.size());
}

TEST(XmlDocumentTest, ParseErrorPropagates) {
  EXPECT_FALSE(XmlDocument::Parse("<a><b></a>").ok());
  EXPECT_FALSE(XmlDocument::Parse("").ok());
}

TEST(XmlDocumentTest, ChildCounts) {
  const XmlDocument doc = MustParse("<a x=\"1\"><b/><c/></a>");
  EXPECT_EQ(doc.ChildCount(doc.root()), 3u);  // attribute + 2 elements
}

}  // namespace
}  // namespace natix
