// Deep verification of the record format: decoding every record of a
// store must reconstruct the full document -- node identity, kinds,
// labels, in-record structure, content sizes and proxy topology.
#include <gtest/gtest.h>

#include <map>

#include "core/algorithm.h"
#include "datagen/generator.h"
#include "storage/record.h"
#include "storage/store.h"
#include "xml/importer.h"

namespace natix {
namespace {

struct Loaded {
  std::unique_ptr<ImportedDocument> doc;
  std::unique_ptr<NatixStore> store;
};

Loaded Load(std::string_view generator, std::string_view algo,
            TotalWeight limit) {
  Loaded out;
  WeightModel model;
  model.max_node_slots = static_cast<uint32_t>(limit);
  const Result<std::string> xml = GenerateDocument(generator, 7, 0.03);
  EXPECT_TRUE(xml.ok());
  Result<ImportedDocument> imp = ImportXml(*xml, model);
  EXPECT_TRUE(imp.ok());
  out.doc = std::make_unique<ImportedDocument>(std::move(imp).value());
  const Result<Partitioning> p = PartitionWith(algo, out.doc->tree, limit);
  EXPECT_TRUE(p.ok());
  Result<NatixStore> store = NatixStore::Build(out.doc->Clone(), *p, limit);
  EXPECT_TRUE(store.ok());
  out.store = std::make_unique<NatixStore>(std::move(store).value());
  return out;
}

class ReconstructionTest
    : public ::testing::TestWithParam<std::tuple<const char*, const char*>> {
};

TEST_P(ReconstructionTest, RecordsReconstructTheDocument) {
  const auto [generator, algo] = GetParam();
  constexpr TotalWeight kLimit = 128;
  Loaded loaded = Load(generator, algo, kLimit);
  const Tree& tree = loaded.doc->tree;
  const NatixStore& store = *loaded.store;

  std::vector<int> seen(tree.size(), 0);
  for (uint32_t part = 0; part < store.record_count(); ++part) {
    const auto bytes = store.RecordBytes(part);
    ASSERT_TRUE(bytes.ok());
    const Result<DecodedRecord> rec =
        DecodeRecord(bytes->first, bytes->second);
    ASSERT_TRUE(rec.ok()) << generator << "/" << algo << " record " << part;

    // Each topology link either resolves inside the record or is marked
    // remote and backed by exactly one proxy naming the tree neighbour.
    const auto check_edge = [&](size_t i, int32_t link, RecordEdge edge,
                                NodeId tree_target) -> uint32_t {
      if (link == kEdgeNone) {
        EXPECT_EQ(tree_target, kInvalidNode);
        return 0;
      }
      if (link == kEdgeRemote) {
        EXPECT_NE(tree_target, kInvalidNode);
        if (tree_target == kInvalidNode) return 1;
        EXPECT_NE(store.PartitionOf(tree_target), part);
        const RecordProxy* found = nullptr;
        for (const RecordProxy& proxy : rec->proxies) {
          if (proxy.from_index == i && proxy.edge == edge) found = &proxy;
        }
        EXPECT_NE(found, nullptr)
            << "remote edge without a proxy at record " << part;
        if (found == nullptr) return 1;
        EXPECT_EQ(found->target_node, tree_target);
        EXPECT_EQ(found->target_partition, store.PartitionOf(tree_target));
        EXPECT_EQ(found->target_record,
                  store.RecordOf(store.PartitionOf(tree_target)));
        return 1;
      }
      EXPECT_LT(static_cast<size_t>(link), rec->nodes.size());
      if (static_cast<size_t>(link) >= rec->nodes.size()) return 0;
      EXPECT_EQ(rec->nodes[static_cast<size_t>(link)].node, tree_target);
      EXPECT_EQ(store.PartitionOf(tree_target), part);
      return 0;
    };
    uint32_t expected_proxies = 0;
    for (size_t i = 0; i < rec->nodes.size(); ++i) {
      const RecordNode& n = rec->nodes[i];
      ASSERT_LT(n.node, tree.size());
      ++seen[n.node];
      // Identity: kind, label and weight survive serialization.
      EXPECT_EQ(n.kind, static_cast<uint8_t>(tree.KindOf(n.node)));
      EXPECT_EQ(n.label, tree.LabelIdOf(n.node));
      EXPECT_EQ(n.weight, tree.WeightOf(n.node));
      // Membership: the store's mapping agrees.
      EXPECT_EQ(store.PartitionOf(n.node), part);
      // Structure: the in-record parent is the tree parent; interval
      // members defer to the record's aggregate, which must name their
      // shared out-of-record parent. Parent links are never remote.
      if (n.parent_in_record >= 0) {
        ASSERT_LT(static_cast<size_t>(n.parent_in_record), rec->nodes.size());
        EXPECT_EQ(rec->nodes[static_cast<size_t>(n.parent_in_record)].node,
                  tree.Parent(n.node));
      } else {
        EXPECT_EQ(n.parent_in_record, kEdgeNone);
        const NodeId parent = tree.Parent(n.node);
        EXPECT_EQ(rec->aggregate.parent_node, parent);
        if (parent != kInvalidNode) {
          EXPECT_NE(store.PartitionOf(parent), part);
          EXPECT_EQ(rec->aggregate.parent_partition,
                    store.PartitionOf(parent));
          EXPECT_EQ(rec->aggregate.parent_record,
                    store.RecordOf(store.PartitionOf(parent)));
        }
      }
      expected_proxies += check_edge(i, n.first_child,
                                     RecordEdge::kFirstChild,
                                     tree.FirstChild(n.node));
      expected_proxies += check_edge(i, n.next_sibling,
                                     RecordEdge::kNextSibling,
                                     tree.NextSibling(n.node));
      expected_proxies += check_edge(i, n.prev_sibling,
                                     RecordEdge::kPrevSibling,
                                     tree.PrevSibling(n.node));
      // Content: inline content is slot padded; overflow keeps the exact
      // byte count.
      const uint32_t content = loaded.doc->content_bytes[n.node];
      if (n.overflow) {
        EXPECT_EQ(n.content_bytes, content);
      } else {
        EXPECT_GE(n.content_bytes, content);
        EXPECT_LT(n.content_bytes, content + 8);
      }
    }
    EXPECT_EQ(rec->proxy_count, expected_proxies)
        << generator << "/" << algo << " record " << part;
    // Document order within the record.
    const std::vector<uint32_t> ranks = tree.PreorderRanks();
    for (size_t i = 1; i < rec->nodes.size(); ++i) {
      EXPECT_LT(ranks[rec->nodes[i - 1].node], ranks[rec->nodes[i].node]);
    }
  }
  // Exactly-once coverage.
  for (NodeId v = 0; v < tree.size(); ++v) {
    EXPECT_EQ(seen[v], 1) << "node " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(
    CorpusByAlgorithm, ReconstructionTest,
    ::testing::Combine(::testing::Values("sigmod", "mondial", "partsupp",
                                         "xmark"),
                       ::testing::Values("EKM", "KM", "RS", "GHDW")),
    [](const ::testing::TestParamInfo<ReconstructionTest::ParamType>& info) {
      return std::string(std::get<0>(info.param)) + "_" +
             std::get<1>(info.param);
    });

}  // namespace
}  // namespace natix
