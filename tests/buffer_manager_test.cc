#include "storage/buffer_manager.h"

#include <gtest/gtest.h>

#include "core/heuristics.h"
#include "datagen/generator.h"
#include "query/evaluator.h"
#include "query/parser.h"
#include "storage/store.h"
#include "xml/importer.h"

namespace natix {
namespace {

TEST(LruBufferPoolTest, HitsAndMisses) {
  LruBufferPool pool = LruBufferPool::Create(2).ValueOrDie();
  EXPECT_FALSE(pool.Access(1));  // miss
  EXPECT_FALSE(pool.Access(2));  // miss
  EXPECT_TRUE(pool.Access(1));   // hit
  EXPECT_EQ(pool.stats().accesses, 3u);
  EXPECT_EQ(pool.stats().hits, 1u);
  EXPECT_EQ(pool.stats().misses, 2u);
  EXPECT_EQ(pool.stats().evictions, 0u);
}

TEST(LruBufferPoolTest, EvictsLeastRecentlyUsed) {
  LruBufferPool pool = LruBufferPool::Create(2).ValueOrDie();
  pool.Access(1);
  pool.Access(2);
  pool.Access(1);  // 1 becomes MRU, 2 is LRU
  pool.Access(3);  // evicts 2
  EXPECT_EQ(pool.stats().evictions, 1u);
  EXPECT_TRUE(pool.IsResident(1));
  EXPECT_FALSE(pool.IsResident(2));
  EXPECT_TRUE(pool.IsResident(3));
  EXPECT_EQ(pool.resident_count(), 2u);
}

TEST(LruBufferPoolTest, SequentialScanThrashesSmallPool) {
  LruBufferPool pool = LruBufferPool::Create(4).ValueOrDie();
  for (int round = 0; round < 3; ++round) {
    for (uint32_t p = 0; p < 16; ++p) pool.Access(p);
  }
  // 16 pages cycling through 4 frames: every access misses.
  EXPECT_EQ(pool.stats().hits, 0u);
  EXPECT_EQ(pool.stats().misses, 48u);
}

TEST(LruBufferPoolTest, LargePoolAllHitsAfterWarmup) {
  LruBufferPool pool = LruBufferPool::Create(64).ValueOrDie();
  for (uint32_t p = 0; p < 16; ++p) pool.Access(p);
  pool.ResetStats();
  for (int round = 0; round < 10; ++round) {
    for (uint32_t p = 0; p < 16; ++p) pool.Access(p);
  }
  EXPECT_DOUBLE_EQ(pool.stats().HitRate(), 1.0);
}

TEST(LruBufferPoolTest, ClearColdRestarts) {
  LruBufferPool pool = LruBufferPool::Create(8).ValueOrDie();
  pool.Access(1);
  pool.Clear();
  EXPECT_EQ(pool.resident_count(), 0u);
  EXPECT_FALSE(pool.Access(1));  // miss again
}

TEST(LruBufferPoolTest, NavigatorRoutesCrossingsThroughPool) {
  WeightModel model;
  model.max_node_slots = 64;
  Result<ImportedDocument> imp =
      ImportXml(GenerateSigmodRecord(3, 0.02), model);
  ASSERT_TRUE(imp.ok());
  const ImportedDocument doc = std::move(imp).value();
  const Result<Partitioning> p = KmPartition(doc.tree, 64);
  ASSERT_TRUE(p.ok());
  const Result<NatixStore> store = NatixStore::Build(doc.Clone(), *p, 64);
  ASSERT_TRUE(store.ok());

  const Result<PathExpr> q = ParseXPath("//author");
  ASSERT_TRUE(q.ok());
  LruBufferPool pool = LruBufferPool::Create(4).ValueOrDie();
  AccessStats stats;
  StoreQueryEvaluator eval(&*store, &stats, &pool);
  ASSERT_TRUE(eval.Evaluate(*q).ok());
  // Every record crossing touched the pool.
  EXPECT_EQ(pool.stats().accesses, stats.record_crossings);
  EXPECT_GT(pool.stats().misses, 0u);
}

TEST(LruBufferPoolTest, FewerRecordsFewerFaults) {
  // The cold-cache claim: under a small buffer, the EKM layout faults
  // less than KM on the same query.
  WeightModel model;
  model.max_node_slots = 256;
  Result<ImportedDocument> imp = ImportXml(GenerateXmark(5, 0.02), model);
  ASSERT_TRUE(imp.ok());
  const ImportedDocument doc = std::move(imp).value();

  auto faults = [&](const Partitioning& part) {
    Result<NatixStore> store = NatixStore::Build(doc.Clone(), part, 256);
    EXPECT_TRUE(store.ok());
    const Result<PathExpr> q = ParseXPath("/site/regions/*/item");
    EXPECT_TRUE(q.ok());
    LruBufferPool pool = LruBufferPool::Create(8).ValueOrDie();
    AccessStats stats;
    StoreQueryEvaluator eval(&*store, &stats, &pool);
    EXPECT_TRUE(eval.Evaluate(*q).ok());
    return pool.stats().misses;
  };
  const Result<Partitioning> km = KmPartition(doc.tree, 256);
  const Result<Partitioning> ekm = EkmPartition(doc.tree, 256);
  ASSERT_TRUE(km.ok() && ekm.ok());
  EXPECT_LT(faults(*ekm), faults(*km));
}

}  // namespace
}  // namespace natix
