#include "updates/incremental.h"

#include <gtest/gtest.h>

#include "core/heuristics.h"
#include "datagen/generator.h"
#include "tests/test_util.h"
#include "xml/importer.h"

namespace natix {
namespace {

TEST(IncrementalTest, CreateEmptyAndAppend) {
  Tree t;
  Result<IncrementalPartitioner> ip =
      IncrementalPartitioner::CreateEmpty(&t, 10, 2, "root");
  ASSERT_TRUE(ip.ok()) << ip.status().ToString();
  EXPECT_EQ(ip->partition_count(), 1u);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(ip->InsertBefore(t.root(), kInvalidNode, 2).ok());
  }
  EXPECT_EQ(ip->partition_count(), 1u);  // 2 + 4*2 = 10 <= 10
  EXPECT_TRUE(ip->Validate().ok());
  // One more child overflows (10 + 2 > 10) and forces a split.
  ASSERT_TRUE(ip->InsertBefore(t.root(), kInvalidNode, 2).ok());
  EXPECT_GT(ip->partition_count(), 1u);
  EXPECT_GT(ip->split_count(), 0u);
  EXPECT_TRUE(ip->Validate().ok()) << ip->Validate().ToString();
}

TEST(IncrementalTest, InsertBeforeMaintainsSiblingOrder) {
  Tree t;
  Result<IncrementalPartitioner> ip =
      IncrementalPartitioner::CreateEmpty(&t, 100, 1);
  ASSERT_TRUE(ip.ok());
  const NodeId a = *ip->InsertBefore(t.root(), kInvalidNode, 1, "a");
  const NodeId c = *ip->InsertBefore(t.root(), kInvalidNode, 1, "c");
  const NodeId b = *ip->InsertBefore(t.root(), c, 1, "b");
  EXPECT_EQ(t.NextSibling(a), b);
  EXPECT_EQ(t.NextSibling(b), c);
  EXPECT_EQ(t.PrevSibling(c), b);
  EXPECT_TRUE(t.Validate().ok());
  EXPECT_TRUE(ip->Validate().ok());
}

TEST(IncrementalTest, RejectsBadInsertions) {
  Tree t;
  Result<IncrementalPartitioner> ip =
      IncrementalPartitioner::CreateEmpty(&t, 10, 1);
  ASSERT_TRUE(ip.ok());
  EXPECT_FALSE(ip->InsertBefore(t.root(), kInvalidNode, 0).ok());
  EXPECT_FALSE(ip->InsertBefore(t.root(), kInvalidNode, 11).ok());
  EXPECT_FALSE(ip->InsertBefore(42, kInvalidNode, 1).ok());
  const NodeId a = *ip->InsertBefore(t.root(), kInvalidNode, 1);
  const NodeId b = *ip->InsertBefore(a, kInvalidNode, 1);
  // `before` must be a child of `parent`.
  EXPECT_FALSE(ip->InsertBefore(t.root(), b, 1).ok());
}

TEST(IncrementalTest, CreateFromBulkloadedPartitioning) {
  WeightModel model;
  model.max_node_slots = 64;
  Result<ImportedDocument> imp =
      ImportXml(GenerateSigmodRecord(4, 0.02), model);
  ASSERT_TRUE(imp.ok());
  ImportedDocument doc = std::move(imp).value();
  const Result<Partitioning> ekm = EkmPartition(doc.tree, 64);
  ASSERT_TRUE(ekm.ok());
  Result<IncrementalPartitioner> ip =
      IncrementalPartitioner::Create(&doc.tree, 64, *ekm);
  ASSERT_TRUE(ip.ok());
  EXPECT_EQ(ip->partition_count(), ekm->size());
  EXPECT_TRUE(ip->Validate().ok());
}

TEST(IncrementalTest, CreateRejectsInfeasibleStart) {
  Tree t = testing_util::Fig3Tree();
  Partitioning p;
  p.Add(t.root(), t.root());  // whole tree, weight 14
  EXPECT_FALSE(IncrementalPartitioner::Create(&t, 5, p).ok());
}

TEST(IncrementalTest, RandomInsertionsStayFeasible) {
  Rng rng(2024);
  for (int trial = 0; trial < 10; ++trial) {
    Tree t;
    const TotalWeight limit = 8 + rng.NextBounded(40);
    Result<IncrementalPartitioner> ip = IncrementalPartitioner::CreateEmpty(
        &t, limit, 1 + static_cast<Weight>(rng.NextBounded(3)));
    ASSERT_TRUE(ip.ok());
    for (int i = 0; i < 300; ++i) {
      const NodeId parent = static_cast<NodeId>(rng.NextBounded(t.size()));
      // Random position: append or before a random child.
      NodeId before = kInvalidNode;
      if (t.ChildCount(parent) > 0 && rng.NextBool(0.4)) {
        const std::vector<NodeId> kids = t.Children(parent);
        before = kids[rng.NextBounded(kids.size())];
      }
      const Weight w =
          1 + static_cast<Weight>(rng.NextBounded(limit > 4 ? 4 : limit));
      ASSERT_TRUE(ip->InsertBefore(parent, before, w).ok());
      if (i % 50 == 49) {
        ASSERT_TRUE(ip->Validate().ok())
            << "trial " << trial << " step " << i << ": "
            << ip->Validate().ToString();
      }
    }
    ASSERT_TRUE(ip->Validate().ok());
    ASSERT_TRUE(t.Validate().ok());
    // The materialized partitioning lists intervals in canonical
    // (document) order even though interval ids are insertion-ordered.
    const Partitioning p = ip->CurrentPartitioning();
    const std::vector<uint32_t> rank = t.PreorderRanks();
    for (size_t i = 1; i < p.size(); ++i) {
      ASSERT_LT(rank[p[i - 1].first], rank[p[i].first])
          << "trial " << trial << ": intervals " << (i - 1) << "," << i;
    }
  }
}

TEST(IncrementalTest, DeltaNamesExactlyTouchedPartitions) {
  Tree t;
  Result<IncrementalPartitioner> ip =
      IncrementalPartitioner::CreateEmpty(&t, 10, 2, "root");
  ASSERT_TRUE(ip.ok());
  // Plain insert: the containing partition is dirty, nothing is created.
  ASSERT_TRUE(ip->InsertBefore(t.root(), kInvalidNode, 2).ok());
  EXPECT_EQ(ip->last_delta().dirty, std::vector<uint32_t>{0});
  EXPECT_TRUE(ip->last_delta().created.empty());
  EXPECT_TRUE(ip->last_delta().deleted.empty());
  // Overflow the partition: the split creates new interval ids and still
  // reports the survivor as dirty.
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(ip->InsertBefore(t.root(), kInvalidNode, 2).ok());
  }
  EXPECT_GT(ip->partition_count(), 1u);
  const PartitionDelta& d = ip->last_delta();
  EXPECT_EQ(d.dirty, std::vector<uint32_t>{0});
  EXPECT_FALSE(d.created.empty());
  for (const uint32_t q : d.created) {
    EXPECT_TRUE(ip->interval(q).alive);
    EXPECT_GE(q, 1u);
  }
  // A follow-up insert into an untouched partition leaves the rest alone.
  ASSERT_TRUE(ip->Validate().ok());
}

TEST(IncrementalTest, QualityWithinReasonOfBatch) {
  // Build a relational-style document node at a time, in document order,
  // then compare the maintained partition count against batch EKM and the
  // optimum on the final tree.
  Tree t;
  constexpr TotalWeight kLimit = 64;
  Result<IncrementalPartitioner> ip =
      IncrementalPartitioner::CreateEmpty(&t, kLimit, 1, "table");
  ASSERT_TRUE(ip.ok());
  Rng rng(7);
  for (int row = 0; row < 400; ++row) {
    const NodeId r = *ip->InsertBefore(t.root(), kInvalidNode, 1, "row");
    for (int col = 0; col < 5; ++col) {
      const NodeId c = *ip->InsertBefore(r, kInvalidNode, 1, "col");
      ASSERT_TRUE(
          ip->InsertBefore(c, kInvalidNode,
                           1 + static_cast<Weight>(rng.NextBounded(4)))
              .ok());
    }
  }
  ASSERT_TRUE(ip->Validate().ok());
  const size_t incremental = ip->partition_count();

  const Result<Partitioning> batch = EkmPartition(t, kLimit);
  ASSERT_TRUE(batch.ok());
  // Online maintenance cannot beat a clean bulkload, but should stay in
  // the same ballpark (the paper's motivation for periodic reorganization
  // notwithstanding).
  EXPECT_GE(incremental, batch->size());
  EXPECT_LE(incremental, batch->size() * 3);
}

TEST(IncrementalTest, DeepGrowthSplitsBelow) {
  // Grow a single deep chain: splits must happen below the single-member
  // root partition.
  Tree t;
  constexpr TotalWeight kLimit = 16;
  Result<IncrementalPartitioner> ip =
      IncrementalPartitioner::CreateEmpty(&t, kLimit, 1);
  ASSERT_TRUE(ip.ok());
  NodeId tip = t.root();
  for (int i = 0; i < 200; ++i) {
    tip = *ip->InsertBefore(tip, kInvalidNode, 1);
  }
  EXPECT_TRUE(ip->Validate().ok());
  // 201 unit nodes with K = 16: at least ceil(201/16) = 13 partitions.
  EXPECT_GE(ip->partition_count(), 13u);
  EXPECT_LE(ip->partition_count(), 40u);
}

TEST(IncrementalTest, OversizedSubtreeCascades) {
  // Inserting heavy children under one parent repeatedly must cascade
  // splits through multiple levels without losing feasibility.
  Tree t;
  constexpr TotalWeight kLimit = 10;
  Result<IncrementalPartitioner> ip =
      IncrementalPartitioner::CreateEmpty(&t, kLimit, 1);
  ASSERT_TRUE(ip.ok());
  const NodeId hub = *ip->InsertBefore(t.root(), kInvalidNode, 1);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(ip->InsertBefore(hub, kInvalidNode, 9).ok());
    ASSERT_TRUE(ip->Validate().ok()) << "step " << i;
  }
}

}  // namespace
}  // namespace natix
