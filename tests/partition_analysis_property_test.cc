// Property tests for the partitioning analyzer itself: Analyze() is the
// ground truth every algorithm test relies on, so it gets its own
// independent cross-check -- a slow recursive weight computation and a
// random generator of structurally valid partitionings.
#include <gtest/gtest.h>

#include <functional>

#include "tests/test_util.h"

namespace natix {
namespace {

// Slow independent computation of a partition weight: for each interval
// member, recursively sum weights stopping at nodes that are members of
// any interval.
TotalWeight SlowIntervalWeight(const Tree& tree, const Partitioning& p,
                               size_t index) {
  std::vector<bool> is_member(tree.size(), false);
  for (const SiblingInterval& iv : p) {
    for (NodeId v = iv.first;; v = tree.NextSibling(v)) {
      is_member[v] = true;
      if (v == iv.last) break;
    }
  }
  std::function<TotalWeight(NodeId)> weight_below = [&](NodeId v) {
    TotalWeight sum = tree.WeightOf(v);
    for (NodeId c = tree.FirstChild(v); c != kInvalidNode;
         c = tree.NextSibling(c)) {
      if (!is_member[c]) sum += weight_below(c);
    }
    return sum;
  };
  TotalWeight total = 0;
  const SiblingInterval& iv = p[index];
  for (NodeId v = iv.first;; v = tree.NextSibling(v)) {
    total += weight_below(v);
    if (v == iv.last) break;
  }
  return total;
}

// Generates a random structurally valid partitioning: a random subset of
// nodes become members, grouped into random runs (same construction as
// the brute forcer, but sampled instead of enumerated).
Partitioning RandomPartitioning(const Tree& tree, Rng& rng,
                                double member_probability) {
  std::vector<uint8_t> state(tree.size(), 0);  // 0 free, 1 start, 2 extend
  for (NodeId v = 1; v < tree.size(); ++v) {
    if (!rng.NextBool(member_probability)) continue;
    const NodeId prev = tree.PrevSibling(v);
    if (prev != kInvalidNode && state[prev] != 0 && rng.NextBool(0.5)) {
      state[v] = 2;
    } else {
      state[v] = 1;
    }
  }
  Partitioning p;
  p.Add(tree.root(), tree.root());
  for (NodeId v = 1; v < tree.size(); ++v) {
    if (state[v] != 1) continue;
    NodeId last = v;
    for (NodeId s = tree.NextSibling(last);
         s != kInvalidNode && state[s] == 2; s = tree.NextSibling(s)) {
      last = s;
    }
    p.Add(v, last);
  }
  return p;
}

TEST(PartitionAnalysisPropertyTest, WeightsMatchSlowComputation) {
  Rng rng(515);
  for (int iter = 0; iter < 60; ++iter) {
    const Tree t = testing_util::RandomTree(rng, 2 + rng.NextBounded(40), 5);
    const Partitioning p = RandomPartitioning(t, rng, rng.NextDouble());
    const Result<PartitionAnalysis> a = Analyze(t, p, 1 << 20);
    ASSERT_TRUE(a.ok()) << TreeToSpec(t);
    ASSERT_EQ(a->interval_weights.size(), p.size());
    TotalWeight sum = 0;
    for (size_t i = 0; i < p.size(); ++i) {
      EXPECT_EQ(a->interval_weights[i], SlowIntervalWeight(t, p, i))
          << TreeToSpec(t) << " interval " << i;
      sum += a->interval_weights[i];
    }
    // Partitions tile the tree: weights sum to the total.
    EXPECT_EQ(sum, t.TotalTreeWeight());
    // The root interval is (t, t); its weight is the root weight.
    EXPECT_EQ(a->interval_weights[0], a->root_weight);
  }
}

TEST(PartitionAnalysisPropertyTest, PartitionOfIsNearestMemberAncestor) {
  Rng rng(516);
  for (int iter = 0; iter < 30; ++iter) {
    const Tree t = testing_util::RandomTree(rng, 2 + rng.NextBounded(30), 4);
    const Partitioning p = RandomPartitioning(t, rng, 0.4);
    const Result<PartitionAnalysis> a = Analyze(t, p, 1 << 20);
    ASSERT_TRUE(a.ok());
    std::vector<int32_t> member_interval(t.size(), -1);
    for (size_t i = 0; i < p.size(); ++i) {
      for (NodeId v = p[i].first;; v = t.NextSibling(v)) {
        member_interval[v] = static_cast<int32_t>(i);
        if (v == p[i].last) break;
      }
    }
    for (NodeId v = 0; v < t.size(); ++v) {
      NodeId x = v;
      while (member_interval[x] < 0) x = t.Parent(x);
      EXPECT_EQ(a->partition_of[v], static_cast<uint32_t>(member_interval[x]))
          << "node " << v;
    }
  }
}

TEST(PartitionAnalysisPropertyTest, FeasibilityThreshold) {
  // For any partitioning, feasibility flips exactly at the max weight.
  Rng rng(517);
  for (int iter = 0; iter < 30; ++iter) {
    const Tree t = testing_util::RandomTree(rng, 2 + rng.NextBounded(25), 6);
    const Partitioning p = RandomPartitioning(t, rng, 0.5);
    const Result<PartitionAnalysis> loose = Analyze(t, p, 1 << 20);
    ASSERT_TRUE(loose.ok());
    const TotalWeight max_w = loose->max_weight;
    const Result<PartitionAnalysis> at = Analyze(t, p, max_w);
    const Result<PartitionAnalysis> below = Analyze(t, p, max_w - 1);
    ASSERT_TRUE(at.ok() && below.ok());
    EXPECT_TRUE(at->feasible);
    EXPECT_FALSE(below->feasible);
  }
}

}  // namespace
}  // namespace natix
