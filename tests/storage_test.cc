#include "storage/store.h"

#include <gtest/gtest.h>

#include "core/exact_algorithms.h"
#include "core/heuristics.h"
#include "datagen/generator.h"
#include "storage/page.h"
#include "storage/record.h"
#include "storage/record_manager.h"
#include "tests/test_util.h"

namespace natix {
namespace {

// ------------------------------------------------------------- pages ----

TEST(PageTest, InsertAndGet) {
  Page page(256);
  const std::vector<uint8_t> rec = {1, 2, 3, 4, 5};
  const Result<uint16_t> slot = page.Insert(rec);
  ASSERT_TRUE(slot.ok());
  const auto got = page.Get(*slot);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->second, rec.size());
  EXPECT_EQ(std::vector<uint8_t>(got->first, got->first + got->second), rec);
}

TEST(PageTest, MultipleRecords) {
  Page page(256);
  for (uint8_t i = 0; i < 10; ++i) {
    const std::vector<uint8_t> rec(10, i);
    const Result<uint16_t> slot = page.Insert(rec);
    ASSERT_TRUE(slot.ok());
    EXPECT_EQ(*slot, i);
  }
  EXPECT_EQ(page.slot_count(), 10u);
  const auto got = page.Get(7);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->first[0], 7);
}

TEST(PageTest, RejectsOverfull) {
  Page page(64);
  const std::vector<uint8_t> big(100, 0);
  EXPECT_FALSE(page.Insert(big).ok());
  // Fill, then overflow: 8B header + 2x(20B payload + 8B dir) = 64.
  const std::vector<uint8_t> small(20, 1);
  ASSERT_TRUE(page.Insert(small).ok());
  ASSERT_TRUE(page.Insert(small).ok());
  EXPECT_EQ(page.FreeSpace(), 0u);
  EXPECT_FALSE(page.Insert(small).ok());
}

TEST(PageTest, GetInvalidSlot) {
  Page page(128);
  EXPECT_FALSE(page.Get(0).ok());
}

TEST(PageTest, FreeSpaceDecreases) {
  Page page(256);
  const size_t before = page.FreeSpace();
  ASSERT_TRUE(page.Insert(std::vector<uint8_t>(30, 0)).ok());
  EXPECT_LT(page.FreeSpace(), before - 30);
}

TEST(PageTest, InsertThatCannotFitEvenAfterCompactionIsResourceExhausted) {
  // Leave a reclaimable hole, then ask for more than hole + tail
  // combined: the insert must fail with ResourceExhausted (the caller's
  // signal to relocate), not with a silent partial write.
  Page page(64);  // 8B header + 2x(20B payload + 8B dir) = 64
  const std::vector<uint8_t> small(20, 1);
  const uint16_t first = *page.Insert(small);
  ASSERT_TRUE(page.Insert(small).ok());
  ASSERT_TRUE(page.Free(first).ok());
  EXPECT_EQ(page.FreeTotal(), 20u);
  const Result<uint16_t> too_big = page.Insert(std::vector<uint8_t>(21, 2));
  ASSERT_FALSE(too_big.ok());
  EXPECT_EQ(too_big.status().code(), StatusCode::kResourceExhausted);
  // A fit-after-compaction record still lands (in the freed slot).
  const Result<uint16_t> fits = page.Insert(std::vector<uint8_t>(20, 3));
  ASSERT_TRUE(fits.ok()) << fits.status().ToString();
  EXPECT_EQ(*fits, first);
}

TEST(PageTest, UpdateThatDoesNotFitIsResourceExhausted) {
  Page page(64);
  const std::vector<uint8_t> small(20, 1);
  const uint16_t a = *page.Insert(small);
  ASSERT_TRUE(page.Insert(small).ok());
  // Growing slot `a` beyond everything the page could ever reclaim must
  // report ResourceExhausted and leave the old record intact.
  const Status grown = page.Update(a, std::vector<uint8_t>(60, 9));
  ASSERT_FALSE(grown.ok());
  EXPECT_EQ(grown.code(), StatusCode::kResourceExhausted);
  const auto got = page.Get(a);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->second, small.size());
  EXPECT_EQ(got->first[0], 1);
}

TEST(PageTest, SlotDirectoryCapsAt64Ki) {
  // Slot numbers travel as uint16_t everywhere downstream (RecordIds,
  // directory lookups), so the 65537th insertion must fail with
  // ResourceExhausted instead of silently aliasing slot 0. One-byte
  // records keep the page affordable: 8B header + 65536 * (1B payload +
  // 8B directory entry).
  Page page(8 + (1u << 16) * 9 + 1024);
  const std::vector<uint8_t> tiny(1, 0xAB);
  for (uint32_t i = 0; i < (1u << 16); ++i) {
    const Result<uint16_t> slot = page.Insert(tiny);
    ASSERT_TRUE(slot.ok()) << "slot " << i << ": "
                           << slot.status().ToString();
    ASSERT_EQ(*slot, static_cast<uint16_t>(i));
  }
  EXPECT_EQ(page.slot_count(), 1u << 16);
  const Result<uint16_t> overflow = page.Insert(tiny);
  ASSERT_FALSE(overflow.ok());
  EXPECT_EQ(overflow.status().code(), StatusCode::kResourceExhausted);
  // Freeing a slot makes room again -- the cap is on directory size, not
  // a permanent state.
  ASSERT_TRUE(page.Free(123).ok());
  const Result<uint16_t> reused = page.Insert(tiny);
  ASSERT_TRUE(reused.ok());
  EXPECT_EQ(*reused, 123u);
}

// ----------------------------------------------------------- records ----

RecordNodeSpec MakeSpec(NodeId node, int32_t parent, uint64_t weight,
                        int32_t label, std::string_view content,
                        bool overflow = false) {
  RecordNodeSpec spec;
  spec.node = node;
  spec.parent = parent;
  spec.weight = weight;
  spec.label = label;
  spec.content = content;
  spec.overflow = overflow;
  return spec;
}

TEST(RecordTest, RoundTrip) {
  RecordBuilder builder;
  RecordNodeSpec root = MakeSpec(10, kEdgeNone, 1, 5, "");
  root.first_child = 1;
  builder.AddNode(root);
  RecordNodeSpec mid = MakeSpec(11, 0, 3, -1, "hello bytes");
  mid.next_sibling = 2;
  builder.AddNode(mid);
  RecordNodeSpec last = MakeSpec(12, 0, 2, 7, "xy");
  last.prev_sibling = 1;
  last.first_child = kEdgeRemote;
  builder.AddNode(last);
  RecordProxy proxy;
  proxy.from_index = 2;
  proxy.edge = RecordEdge::kFirstChild;
  proxy.target_node = 42;
  proxy.target_partition = 7;
  proxy.target_record = RecordId{9};
  proxy.target_slot = 0;
  builder.AddProxy(proxy);
  RecordAggregate agg;
  agg.parent_node = 3;
  agg.parent_partition = 1;
  agg.parent_record = RecordId{4};
  agg.parent_slot = 2;
  builder.SetAggregate(agg);
  const Result<std::vector<uint8_t>> bytes = builder.Build();
  ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();
  EXPECT_EQ(bytes->size(), builder.ByteSize());
  const Result<DecodedRecord> rec =
      DecodeRecord(bytes->data(), bytes->size());
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  ASSERT_EQ(rec->nodes.size(), 3u);
  EXPECT_EQ(rec->proxy_count, 1u);
  ASSERT_EQ(rec->proxies.size(), 1u);
  EXPECT_EQ(rec->proxies[0], proxy);
  EXPECT_EQ(rec->aggregate, agg);
  EXPECT_EQ(rec->nodes[0].node, 10u);
  EXPECT_EQ(rec->nodes[0].parent_in_record, kEdgeNone);
  EXPECT_EQ(rec->nodes[0].first_child, 1);
  EXPECT_EQ(rec->nodes[0].label, 5);
  EXPECT_EQ(rec->nodes[1].parent_in_record, 0);
  EXPECT_EQ(rec->nodes[1].weight, 3u);
  EXPECT_EQ(rec->nodes[1].content, "hello bytes");
  // Inline content is slot padded: 11 bytes -> 16.
  EXPECT_EQ(rec->nodes[1].content_bytes, 16u);
  EXPECT_EQ(rec->nodes[2].content_bytes, 8u);
  EXPECT_EQ(rec->nodes[2].first_child, kEdgeRemote);
}

TEST(RecordTest, OverflowNode) {
  RecordBuilder builder(8, kRecordFormatV2);
  const std::string big(1000, 'z');
  builder.AddNode(MakeSpec(1, kEdgeNone, 1, -1, big, /*overflow=*/true));
  const Result<std::vector<uint8_t>> bytes = builder.Build();
  ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();
  // 28B header + 16B narrow topology entry + header slot + overflow slot.
  EXPECT_EQ(bytes->size(), 28u + 16u + 8u + 8u);
  const Result<DecodedRecord> rec =
      DecodeRecord(bytes->data(), bytes->size());
  ASSERT_TRUE(rec.ok());
  EXPECT_TRUE(rec->nodes[0].overflow);
  EXPECT_EQ(rec->nodes[0].content_bytes, 1000u);
  EXPECT_TRUE(rec->nodes[0].content.empty());
}

TEST(RecordTest, OverflowNodeV3) {
  RecordBuilder builder;  // default format is v3
  const std::string big(1000, 'z');
  builder.AddNode(MakeSpec(1, kEdgeNone, 1, -1, big, /*overflow=*/true));
  const Result<std::vector<uint8_t>> bytes = builder.Build();
  ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();
  // 28B header + 16B narrow topology entry + packed data entry
  // (1B meta + 1B label varint + 2B external-length varint).
  EXPECT_EQ(bytes->size(), 28u + 16u + 4u);
  const Result<DecodedRecord> rec =
      DecodeRecord(bytes->data(), bytes->size());
  ASSERT_TRUE(rec.ok());
  EXPECT_TRUE(rec->nodes[0].overflow);
  EXPECT_EQ(rec->nodes[0].content_bytes, 1000u);
  EXPECT_TRUE(rec->nodes[0].content.empty());
}

TEST(RecordTest, DecodeRejectsTruncated) {
  RecordBuilder builder;
  builder.AddNode(MakeSpec(1, kEdgeNone, 4, 0, "some content here"));
  const Result<std::vector<uint8_t>> bytes = builder.Build();
  ASSERT_TRUE(bytes.ok());
  for (size_t cut = 0; cut < bytes->size(); ++cut) {
    EXPECT_FALSE(DecodeRecord(bytes->data(), cut).ok()) << cut;
  }
}

// ---------------------------------------------------- record manager ----

TEST(RecordManagerTest, PacksSeveralRecordsPerPage) {
  RecordManager mgr(1024);
  for (int i = 0; i < 8; ++i) {
    const Result<RecordId> id = mgr.Insert(std::vector<uint8_t>(100, 1));
    ASSERT_TRUE(id.ok());
  }
  EXPECT_EQ(mgr.record_count(), 8u);
  EXPECT_EQ(mgr.page_count(), 1u);
  const Result<RecordId> id = mgr.Insert(std::vector<uint8_t>(900, 2));
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(mgr.page_count(), 2u);
}

TEST(RecordManagerTest, LookbackFillsEarlierPages) {
  RecordManager mgr(1024, /*lookback=*/4);
  // A big record opens page 0 with some slack; a small one must reuse it.
  ASSERT_TRUE(mgr.Insert(std::vector<uint8_t>(700, 1)).ok());
  const Result<RecordId> small = mgr.Insert(std::vector<uint8_t>(100, 2));
  ASSERT_TRUE(small.ok());
  EXPECT_EQ(mgr.PageOf(*small), 0u);
}

TEST(RecordManagerTest, JumboRecordSpansDedicatedPages) {
  RecordManager mgr(512);
  const std::vector<uint8_t> big(1200, 7);
  const Result<RecordId> id = mgr.Insert(big);
  ASSERT_TRUE(id.ok());
  EXPECT_TRUE(mgr.IsJumbo(*id));
  EXPECT_EQ(mgr.jumbo_record_count(), 1u);
  // 1200 bytes over (512 - 16)-byte payload pages -> 3 pages.
  EXPECT_EQ(mgr.page_count(), 3u);
  const auto got = mgr.Get(*id);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->second, big.size());
  EXPECT_EQ(got->first[0], 7);
  // Regular records continue to work alongside jumbo ones.
  const Result<RecordId> small = mgr.Insert(std::vector<uint8_t>(40, 1));
  ASSERT_TRUE(small.ok());
  EXPECT_FALSE(mgr.IsJumbo(*small));
  EXPECT_TRUE(mgr.Get(*small).ok());
}

TEST(RecordManagerTest, GetRejectsUnknownId) {
  RecordManager mgr(512);
  EXPECT_FALSE(mgr.Get(RecordId{42}).ok());
  EXPECT_FALSE(mgr.Get(RecordId{}).ok());
}

TEST(RecordManagerTest, UtilizationTracksPayload) {
  RecordManager mgr(1024);
  ASSERT_TRUE(mgr.Insert(std::vector<uint8_t>(512, 0)).ok());
  EXPECT_NEAR(mgr.Utilization(), 0.5, 0.01);
}

// -------------------------------------------------------------- store ----

ImportedDocument ImportFixture() {
  WeightModel model;
  model.max_node_slots = 64;
  const std::string xml = GenerateSigmodRecord(11, 0.02);
  Result<ImportedDocument> imp = ImportXml(xml, model);
  EXPECT_TRUE(imp.ok()) << imp.status().ToString();
  return std::move(imp).value();
}

TEST(StoreTest, BuildFromEkmPartitioning) {
  const ImportedDocument doc = ImportFixture();
  const Result<Partitioning> p = EkmPartition(doc.tree, 64);
  ASSERT_TRUE(p.ok());
  const Result<NatixStore> store = NatixStore::Build(doc.Clone(), *p, 64);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_EQ(store->record_count(), p->size());
  EXPECT_GT(store->page_count(), 0u);
  EXPECT_GT(store->TotalDiskBytes(), 0u);
}

TEST(StoreTest, EveryNodeHasARecord) {
  const ImportedDocument doc = ImportFixture();
  const Result<Partitioning> p = KmPartition(doc.tree, 64);
  ASSERT_TRUE(p.ok());
  const Result<NatixStore> store = NatixStore::Build(doc.Clone(), *p, 64);
  ASSERT_TRUE(store.ok());
  for (NodeId v = 0; v < doc.tree.size(); ++v) {
    EXPECT_LT(store->PartitionOf(v), p->size());
    EXPECT_TRUE(store->RecordOfNode(v).valid());
  }
}

TEST(StoreTest, RecordsDecodeAndCoverAllNodes) {
  const ImportedDocument doc = ImportFixture();
  const Result<Partitioning> p = EkmPartition(doc.tree, 64);
  ASSERT_TRUE(p.ok());
  const Result<NatixStore> store = NatixStore::Build(doc.Clone(), *p, 64);
  ASSERT_TRUE(store.ok());
  size_t total_nodes = 0;
  std::vector<bool> seen(doc.tree.size(), false);
  for (uint32_t part = 0; part < store->record_count(); ++part) {
    const auto bytes = store->RecordBytes(part);
    ASSERT_TRUE(bytes.ok());
    const Result<DecodedRecord> rec =
        DecodeRecord(bytes->first, bytes->second);
    ASSERT_TRUE(rec.ok()) << rec.status().ToString();
    for (const RecordNode& n : rec->nodes) {
      ASSERT_LT(n.node, doc.tree.size());
      EXPECT_FALSE(seen[n.node]) << "node stored twice";
      seen[n.node] = true;
      EXPECT_EQ(store->PartitionOf(n.node), part);
      // Parent linkage: in-record parents must match the tree.
      if (n.parent_in_record >= 0) {
        const NodeId parent = rec->nodes[n.parent_in_record].node;
        EXPECT_EQ(doc.tree.Parent(n.node), parent);
      }
    }
    total_nodes += rec->nodes.size();
  }
  EXPECT_EQ(total_nodes, doc.tree.size());
}

TEST(StoreTest, RejectsInfeasiblePartitioning) {
  const ImportedDocument doc = ImportFixture();
  Partitioning p;
  p.Add(doc.tree.root(), doc.tree.root());  // everything in one partition
  EXPECT_FALSE(NatixStore::Build(doc.Clone(), p, 64).ok());
}

TEST(StoreTest, FewerPartitionsFewerRecords) {
  const ImportedDocument doc = ImportFixture();
  const Result<Partitioning> ekm = EkmPartition(doc.tree, 64);
  const Result<Partitioning> km = KmPartition(doc.tree, 64);
  ASSERT_TRUE(ekm.ok() && km.ok());
  const Result<NatixStore> s_ekm = NatixStore::Build(doc.Clone(), *ekm, 64);
  const Result<NatixStore> s_km = NatixStore::Build(doc.Clone(), *km, 64);
  ASSERT_TRUE(s_ekm.ok() && s_km.ok());
  EXPECT_LT(s_ekm->record_count(), s_km->record_count());
}

TEST(StoreTest, OverflowPagesAccounted) {
  WeightModel model;
  model.max_node_slots = 16;
  const std::string big(100000, 'q');
  const Result<ImportedDocument> imp =
      ImportXml("<a><t>" + big + "</t></a>", model);
  ASSERT_TRUE(imp.ok());
  const Result<Partitioning> p = EkmPartition(imp->tree, 16);
  ASSERT_TRUE(p.ok());
  const Result<NatixStore> store = NatixStore::Build(imp->Clone(), *p, 16);
  ASSERT_TRUE(store.ok());
  EXPECT_GE(store->overflow_page_count(), 100000u / 8192);
  EXPECT_GT(store->TotalDiskBytes(),
            store->page_count() * 8192ull);
}

// ---------------------------------------------------------- navigator ----

TEST(NavigatorTest, IntraVsCrossAccounting) {
  // Tree a(b c) with partitioning {(a,a),(b,c)}: moving a->b crosses,
  // b->c stays within the record.
  WeightModel model;
  const Result<ImportedDocument> imp = ImportXml("<a><b/><c/></a>", model);
  ASSERT_TRUE(imp.ok());
  Partitioning p;
  p.Add(0, 0);
  p.Add(1, 2);
  const Result<NatixStore> store = NatixStore::Build(imp->Clone(), p, 100);
  ASSERT_TRUE(store.ok());
  AccessStats stats;
  Navigator nav(&*store, &stats);
  EXPECT_TRUE(nav.ToFirstChild());  // a -> b: crossing
  EXPECT_EQ(stats.record_crossings, 1u);
  EXPECT_TRUE(nav.ToNextSibling());  // b -> c: intra
  EXPECT_EQ(stats.intra_moves, 1u);
  EXPECT_TRUE(nav.ToParent());  // c -> a: crossing
  EXPECT_EQ(stats.record_crossings, 2u);
  EXPECT_FALSE(nav.ToNextSibling());  // root has no sibling
  EXPECT_EQ(stats.TotalMoves(), 3u);
}

TEST(NavigatorTest, SinglePartitionAllIntra) {
  const Result<ImportedDocument> imp =
      ImportXml("<a><b><c/></b><d/></a>", WeightModel());
  ASSERT_TRUE(imp.ok());
  Partitioning p;
  p.Add(0, 0);
  const Result<NatixStore> store = NatixStore::Build(imp->Clone(), p, 100);
  ASSERT_TRUE(store.ok());
  AccessStats stats;
  Navigator nav(&*store, &stats);
  nav.ToFirstChild();
  nav.ToFirstChild();
  nav.ToParent();
  nav.ToNextSibling();
  EXPECT_EQ(stats.record_crossings, 0u);
  EXPECT_EQ(stats.intra_moves, 4u);
}

TEST(NavigatorTest, CostModel) {
  AccessStats stats;
  stats.intra_moves = 1000;
  stats.record_crossings = 10;
  stats.page_switches = 5;
  NavigationCostModel model;
  const double cost = model.CostSeconds(stats);
  EXPECT_NEAR(cost, (1000 * 25.0 + 10 * 700.0 + 5 * 300.0) * 1e-9, 1e-12);
}

TEST(NavigatorTest, BetterPartitioningFewerCrossings) {
  // Full-document scan: the EKM layout must cross records fewer times
  // than the KM layout (the mechanism behind Table 3).
  const ImportedDocument doc = ImportFixture();
  const Result<Partitioning> ekm = EkmPartition(doc.tree, 64);
  const Result<Partitioning> km = KmPartition(doc.tree, 64);
  ASSERT_TRUE(ekm.ok() && km.ok());
  const Result<NatixStore> s_ekm = NatixStore::Build(doc.Clone(), *ekm, 64);
  const Result<NatixStore> s_km = NatixStore::Build(doc.Clone(), *km, 64);
  ASSERT_TRUE(s_ekm.ok() && s_km.ok());

  auto scan_crossings = [](const NatixStore& store) {
    AccessStats stats;
    Navigator nav(&store, &stats);
    // Depth-first scan using only navigation primitives.
    std::vector<NodeId> stack = {store.tree().root()};
    while (!stack.empty()) {
      const NodeId v = stack.back();
      stack.pop_back();
      nav.JumpTo(v);
      for (NodeId c = store.tree().FirstChild(v); c != kInvalidNode;
           c = store.tree().NextSibling(c)) {
        stack.push_back(c);
      }
    }
    return stats.record_crossings;
  };
  EXPECT_LT(scan_crossings(*s_ekm), scan_crossings(*s_km));
}

}  // namespace
}  // namespace natix
