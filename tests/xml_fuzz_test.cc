// Robustness tests for the XML parser: deterministic fuzzing by byte
// mutation of valid documents and by feeding structured garbage. The
// parser must always terminate with either a document or a ParseError --
// never crash, hang or accept structurally broken input silently.
#include <gtest/gtest.h>

#include <string>

#include "common/rng.h"
#include "datagen/generator.h"
#include "xml/document.h"
#include "xml/parser.h"

namespace natix {
namespace {

// Drains the parser; returns true if it reached kEndDocument.
bool ParseToEnd(std::string_view xml, size_t* events = nullptr) {
  XmlParser parser(xml);
  size_t n = 0;
  for (;;) {
    Result<XmlEvent> ev = parser.Next();
    if (!ev.ok()) {
      if (events != nullptr) *events = n;
      return false;
    }
    if (ev->type == XmlEventType::kEndDocument) {
      if (events != nullptr) *events = n;
      return true;
    }
    ++n;
    EXPECT_LE(n, 10 * xml.size() + 16) << "parser produced too many events";
    if (n > 10 * xml.size() + 16) return false;
  }
}

TEST(XmlFuzzTest, ByteMutationsNeverCrash) {
  const std::string base = GenerateSigmodRecord(1, 0.01);
  Rng rng(1001);
  int accepted = 0;
  for (int iter = 0; iter < 300; ++iter) {
    std::string mutated = base;
    const int mutations = 1 + static_cast<int>(rng.NextBounded(4));
    for (int m = 0; m < mutations; ++m) {
      const size_t pos = rng.NextBounded(mutated.size());
      switch (rng.NextBounded(3)) {
        case 0:  // flip to a random byte
          mutated[pos] = static_cast<char>(rng.NextBounded(256));
          break;
        case 1:  // delete a byte
          mutated.erase(pos, 1);
          break;
        default:  // duplicate a byte
          mutated.insert(pos, 1, mutated[pos]);
      }
    }
    accepted += ParseToEnd(mutated);
  }
  // Some mutations only touch text content and stay well-formed.
  EXPECT_GT(accepted, 0);
  EXPECT_LT(accepted, 300);
}

TEST(XmlFuzzTest, TruncationsNeverCrash) {
  const std::string base = GenerateUwm(2, 0.005);
  Rng rng(1002);
  for (int iter = 0; iter < 100; ++iter) {
    const size_t cut = rng.NextBounded(base.size());
    ParseToEnd(std::string_view(base).substr(0, cut));
  }
}

TEST(XmlFuzzTest, RandomGarbageNeverCrashes) {
  Rng rng(1003);
  for (int iter = 0; iter < 200; ++iter) {
    std::string garbage;
    const size_t len = rng.NextBounded(200);
    for (size_t i = 0; i < len; ++i) {
      // Bias toward XML metacharacters to reach deep parser states.
      static constexpr char kAlphabet[] = "<>/=\"'&;![]-? abcx\n\t";
      garbage.push_back(
          kAlphabet[rng.NextBounded(sizeof(kAlphabet) - 1)]);
    }
    ParseToEnd(garbage);
  }
}

TEST(XmlFuzzTest, RandomDocumentsRoundTrip) {
  // Random trees -> serialize -> parse -> serialize must be stable.
  Rng rng(1004);
  for (int iter = 0; iter < 50; ++iter) {
    // Build a random document directly.
    std::string xml;
    int open = 0;
    const int ops = 5 + static_cast<int>(rng.NextBounded(60));
    xml += "<r0>";
    ++open;
    int counter = 1;
    for (int i = 0; i < ops; ++i) {
      const double dice = rng.NextDouble();
      if (dice < 0.4) {
        xml += "<e" + std::to_string(counter++) + ">";
        ++open;
      } else if (dice < 0.6 && open > 1) {
        xml += "</e" + std::to_string(--counter) + ">";
        --open;
        // The name may not match the actual open element; rebuild
        // conservatively instead: skip mismatched closes.
      } else {
        xml += "t" + std::to_string(i) + " ";
      }
    }
    // This generator cannot guarantee well-formedness (close-name
    // mismatches); accept either outcome but require termination.
    ParseToEnd(xml);
  }
}

TEST(XmlFuzzTest, ValidDocumentsAlwaysAccepted) {
  // Serialize random structurally-valid documents via XmlDocument and
  // ensure the parser accepts its own serializer's output.
  Rng rng(1005);
  for (int iter = 0; iter < 50; ++iter) {
    std::string xml = "<root>";
    std::vector<std::string> stack = {"root"};
    const int ops = 10 + static_cast<int>(rng.NextBounded(80));
    for (int i = 0; i < ops; ++i) {
      const double dice = rng.NextDouble();
      if (dice < 0.35) {
        const std::string name = "n" + std::to_string(rng.NextBounded(10));
        xml += "<" + name +
               (rng.NextBool(0.3)
                    ? " a=\"v" + std::to_string(rng.NextBounded(100)) + "\""
                    : "") +
               ">";
        stack.push_back(name);
      } else if (dice < 0.6 && stack.size() > 1) {
        xml += "</" + stack.back() + ">";
        stack.pop_back();
      } else if (dice < 0.8) {
        xml += "text&amp;more ";
      } else {
        xml += "<!-- c --><leaf/>";
      }
    }
    while (!stack.empty()) {
      xml += "</" + stack.back() + ">";
      stack.pop_back();
    }
    size_t events = 0;
    EXPECT_TRUE(ParseToEnd(xml, &events)) << xml;
    EXPECT_GT(events, 0u);
    // And the DOM serializer round-trips.
    const Result<XmlDocument> doc = XmlDocument::Parse(xml);
    ASSERT_TRUE(doc.ok());
    const std::string once = doc->Serialize();
    const Result<XmlDocument> again = XmlDocument::Parse(once);
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(again->Serialize(), once);
  }
}

TEST(XmlFuzzTest, PathologicalNesting) {
  // Unbalanced deep opens must error out, not overflow.
  std::string xml;
  for (int i = 0; i < 100000; ++i) xml += "<a>";
  EXPECT_FALSE(ParseToEnd(xml));
  // Deep but balanced input is fine (stack is heap-allocated).
  std::string ok;
  for (int i = 0; i < 100000; ++i) ok += "<a>";
  for (int i = 0; i < 100000; ++i) ok += "</a>";
  EXPECT_TRUE(ParseToEnd(ok));
}

}  // namespace
}  // namespace natix
