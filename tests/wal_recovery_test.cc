#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/crc32.h"
#include "common/rng.h"
#include "core/heuristics.h"
#include "datagen/generator.h"
#include "query/evaluator.h"
#include "query/parser.h"
#include "query/xpathmark.h"
#include "storage/buffer_manager.h"
#include "storage/fault_injector.h"
#include "storage/file_backend.h"
#include "storage/page.h"
#include "storage/store.h"
#include "storage/wal.h"
#include "xml/importer.h"

namespace natix {
namespace {

// ----------------------------------------------------------- crc32 ------

TEST(Crc32Test, KnownAnswer) {
  // The IEEE 802.3 check value for the nine ASCII digits.
  const char digits[] = "123456789";
  EXPECT_EQ(Crc32(digits, 9), 0xCBF43926u);
  EXPECT_EQ(Crc32(nullptr, 0), 0x00000000u);
}

TEST(Crc32Test, SeedChainsIncrementally) {
  const char digits[] = "123456789";
  const uint32_t head = Crc32(digits, 4);
  EXPECT_EQ(Crc32(digits + 4, 5, head), Crc32(digits, 9));
}

// ------------------------------------------------------- wal basics -----

TEST(WalTest, RoundTripsEntries) {
  MemoryFileBackend* mem = new MemoryFileBackend();
  std::unique_ptr<FileBackend> backend(mem);
  // The unbuffered legacy policy: every entry hits the backend inside
  // Append(), so the reader below needs no flush.
  Result<std::unique_ptr<WalWriter>> writer =
      WalWriter::Create(backend.get(), SyncPolicy::OnCheckpoint());
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  EXPECT_EQ(*(*writer)->Append(WalEntryType::kInsertOp, {1, 2, 3}), 1u);
  EXPECT_EQ(*(*writer)->Append(WalEntryType::kCheckpointBegin, {}), 2u);
  EXPECT_EQ(*(*writer)->Append(WalEntryType::kPageImage,
                               std::vector<uint8_t>(100, 7)),
            3u);

  Result<WalReader> reader = WalReader::Open(backend.get());
  ASSERT_TRUE(reader.ok());
  Result<std::optional<WalEntry>> e = reader->Next();
  ASSERT_TRUE(e.ok() && e->has_value());
  EXPECT_EQ((*e)->lsn, 1u);
  EXPECT_EQ((*e)->type, WalEntryType::kInsertOp);
  EXPECT_EQ((*e)->payload, (std::vector<uint8_t>{1, 2, 3}));
  e = reader->Next();
  ASSERT_TRUE(e.ok() && e->has_value());
  EXPECT_EQ((*e)->lsn, 2u);
  EXPECT_TRUE((*e)->payload.empty());
  e = reader->Next();
  ASSERT_TRUE(e.ok() && e->has_value());
  EXPECT_EQ((*e)->payload.size(), 100u);
  e = reader->Next();
  ASSERT_TRUE(e.ok());
  EXPECT_FALSE(e->has_value());
  EXPECT_FALSE(reader->tail_is_torn());
  EXPECT_EQ(reader->next_lsn(), 4u);
}

TEST(WalTest, RefusesFreshLogOnNonEmptyBackend) {
  MemoryFileBackend backend;
  ASSERT_TRUE(backend.Append("x", 1).ok());
  EXPECT_FALSE(WalWriter::Create(&backend).ok());
}

TEST(WalTest, TornTailStopsAtLastValidEntry) {
  auto disk = std::make_shared<MemoryFileBackend::Bytes>();
  MemoryFileBackend backend(disk);
  Result<std::unique_ptr<WalWriter>> writer =
      WalWriter::Create(&backend, SyncPolicy::OnCheckpoint());
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Append(WalEntryType::kInsertOp, {1}).ok());
  ASSERT_TRUE((*writer)->Append(WalEntryType::kInsertOp, {2, 2}).ok());
  const uint64_t end_of_two = disk->size();
  ASSERT_TRUE(
      (*writer)->Append(WalEntryType::kInsertOp, std::vector<uint8_t>(40, 3))
          .ok());
  // Chop the log mid-way through the third entry.
  disk->resize(disk->size() - 25);

  Result<WalReader> reader = WalReader::Open(&backend);
  ASSERT_TRUE(reader.ok());
  int seen = 0;
  while (true) {
    Result<std::optional<WalEntry>> e = reader->Next();
    ASSERT_TRUE(e.ok());
    if (!e->has_value()) break;
    ++seen;
  }
  EXPECT_EQ(seen, 2);
  EXPECT_TRUE(reader->tail_is_torn());
  EXPECT_EQ(reader->valid_end(), end_of_two);
  EXPECT_EQ(reader->next_lsn(), 3u);

  // The standard recovery move: truncate the torn tail and keep going.
  ASSERT_TRUE(backend.Truncate(reader->valid_end()).ok());
  Result<std::unique_ptr<WalWriter>> attach =
      WalWriter::Attach(&backend, reader->next_lsn(),
                        SyncPolicy::OnCheckpoint());
  ASSERT_TRUE(attach.ok());
  EXPECT_EQ(*(*attach)->Append(WalEntryType::kInsertOp, {9}), 3u);
  Result<WalReader> again = WalReader::Open(&backend);
  ASSERT_TRUE(again.ok());
  int count = 0;
  while (true) {
    Result<std::optional<WalEntry>> e = again->Next();
    ASSERT_TRUE(e.ok());
    if (!e->has_value()) break;
    ++count;
  }
  EXPECT_EQ(count, 3);
  EXPECT_FALSE(again->tail_is_torn());
}

TEST(WalTest, CorruptCrcEndsTheValidPrefix) {
  auto disk = std::make_shared<MemoryFileBackend::Bytes>();
  MemoryFileBackend backend(disk);
  Result<std::unique_ptr<WalWriter>> writer =
      WalWriter::Create(&backend, SyncPolicy::OnCheckpoint());
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Append(WalEntryType::kInsertOp, {1, 1, 1}).ok());
  ASSERT_TRUE((*writer)->Append(WalEntryType::kInsertOp, {2, 2, 2}).ok());
  // Flip one payload byte of the second entry.
  disk->back() ^= 0xFF;
  Result<WalReader> reader = WalReader::Open(&backend);
  ASSERT_TRUE(reader.ok());
  Result<std::optional<WalEntry>> e = reader->Next();
  ASSERT_TRUE(e.ok() && e->has_value());
  e = reader->Next();
  ASSERT_TRUE(e.ok());
  EXPECT_FALSE(e->has_value());
  EXPECT_TRUE(reader->tail_is_torn());
}

TEST(WalTest, OpenRejectsMissingOrBadMagic) {
  MemoryFileBackend empty;
  EXPECT_FALSE(WalReader::Open(&empty).ok());
  MemoryFileBackend bad;
  ASSERT_TRUE(bad.Append("NOTAWAL0", 8).ok());
  EXPECT_FALSE(WalReader::Open(&bad).ok());
}

// ---------------------------------------------- group-commit engine -----

/// Replays a raw log image and counts its valid entries.
int CountValidEntries(const std::vector<uint8_t>& image, bool* torn) {
  MemoryFileBackend replay(
      std::make_shared<MemoryFileBackend::Bytes>(image));
  Result<WalReader> reader = WalReader::Open(&replay);
  EXPECT_TRUE(reader.ok()) << reader.status().ToString();
  if (!reader.ok()) return -1;
  int seen = 0;
  while (true) {
    Result<std::optional<WalEntry>> e = reader->Next();
    EXPECT_TRUE(e.ok());
    if (!e.ok() || !e->has_value()) break;
    ++seen;
  }
  if (torn != nullptr) *torn = reader->tail_is_torn();
  return seen;
}

TEST(WalGroupCommitTest, EveryOpPolicySyncsBeforeAcknowledging) {
  FaultInjectingBackend backend(std::make_unique<MemoryFileBackend>(),
                                /*fault_at=*/~0ull, FaultMode::kFailStop);
  Result<std::unique_ptr<WalWriter>> writer =
      WalWriter::Create(&backend, SyncPolicy::EveryOp());
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  for (uint64_t i = 1; i <= 5; ++i) {
    Result<uint64_t> lsn =
        (*writer)->Append(WalEntryType::kInsertOp, {static_cast<uint8_t>(i)});
    ASSERT_TRUE(lsn.ok()) << lsn.status().ToString();
    EXPECT_EQ(*lsn, i);
    // The acknowledgement contract: by the time Append returns, the
    // entry is fsynced -- the durable watermark covers it.
    EXPECT_EQ((*writer)->durable_lsn(), i);
  }
  EXPECT_GE((*writer)->fsync_count(), 5u);
  // Pull the plug right now: the durable image must replay all five.
  Result<std::vector<uint8_t>> image = backend.DurableImage();
  ASSERT_TRUE(image.ok());
  bool torn = true;
  EXPECT_EQ(CountValidEntries(*image, &torn), 5);
  EXPECT_FALSE(torn);
}

TEST(WalGroupCommitTest, GroupCommitBatchesEntriesPerFsync) {
  MemoryFileBackend backend;
  // A far-future window with max_ops = 4: batches form on the op
  // threshold (or the final explicit Sync), never on the clock, so the
  // arithmetic below is timing-independent.
  Result<std::unique_ptr<WalWriter>> writer = WalWriter::Create(
      &backend, SyncPolicy::GroupCommit(/*window_us=*/60'000'000,
                                        /*max_ops=*/4,
                                        /*max_bytes=*/1u << 20));
  ASSERT_TRUE(writer.ok());
  for (uint64_t i = 1; i <= 8; ++i) {
    Result<uint64_t> lsn =
        (*writer)->Append(WalEntryType::kInsertOp, {static_cast<uint8_t>(i)});
    ASSERT_TRUE(lsn.ok());
    EXPECT_EQ(*lsn, i);  // acked immediately with the assigned LSN
  }
  ASSERT_TRUE((*writer)->Sync().ok());
  EXPECT_EQ((*writer)->durable_lsn(), 8u);
  EXPECT_EQ((*writer)->last_lsn(), 8u);
  EXPECT_EQ((*writer)->synced_entry_count(), 8u);
  // Batching must beat one-fsync-per-op: at least one batch held >= 4
  // entries, so there are strictly fewer batches than entries.
  EXPECT_GE((*writer)->sync_batch_count(), 1u);
  EXPECT_LT((*writer)->sync_batch_count(), 8u);
}

TEST(WalGroupCommitTest, BackgroundFlusherAdvancesWatermarkWithoutSync) {
  MemoryFileBackend backend;
  Result<std::unique_ptr<WalWriter>> writer = WalWriter::Create(
      &backend, SyncPolicy::GroupCommit(/*window_us=*/100, /*max_ops=*/64,
                                        /*max_bytes=*/1u << 20));
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Append(WalEntryType::kInsertOp, {1, 2, 3}).ok());
  // No explicit Sync: the flusher thread alone must land the entry once
  // the commit window elapses. Bounded spin, fails by deadline.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while ((*writer)->durable_lsn() < 1) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "flusher never made the entry durable";
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE((*writer)->fsync_count(), 1u);
  EXPECT_TRUE((*writer)->WaitDurable(1).ok());
}

TEST(WalGroupCommitTest, TransientAppendFaultsAreRetriedWithoutDuplication) {
  FaultInjectingBackend backend(std::make_unique<MemoryFileBackend>(),
                                /*fault_at=*/~0ull, FaultMode::kFailStop);
  Result<std::unique_ptr<WalWriter>> writer =
      WalWriter::Create(&backend, SyncPolicy::EveryOp());
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Append(WalEntryType::kInsertOp, {1}).ok());
  // The next two append attempts fail transiently, each possibly landing
  // a partial prefix the writer must truncate away before retrying.
  backend.ArmTransientAppendFault(backend.append_count(), 2);
  Result<uint64_t> lsn = (*writer)->Append(WalEntryType::kInsertOp, {2, 2});
  ASSERT_TRUE(lsn.ok()) << lsn.status().ToString();
  EXPECT_EQ(*lsn, 2u);
  EXPECT_EQ(backend.append_faults_fired(), 2u);
  EXPECT_EQ((*writer)->transient_retry_count(), 2u);
  EXPECT_EQ((*writer)->durable_lsn(), 2u);
  // No duplicated or half-landed bytes: the log replays as exactly two
  // intact entries.
  Result<std::vector<uint8_t>> image = backend.DurableImage();
  ASSERT_TRUE(image.ok());
  bool torn = true;
  EXPECT_EQ(CountValidEntries(*image, &torn), 2);
  EXPECT_FALSE(torn);
}

TEST(WalGroupCommitTest, TransientFaultStormExhaustsRetriesAndKills) {
  FaultInjectingBackend backend(std::make_unique<MemoryFileBackend>(),
                                /*fault_at=*/~0ull, FaultMode::kFailStop);
  Result<std::unique_ptr<WalWriter>> writer =
      WalWriter::Create(&backend, SyncPolicy::EveryOp());
  ASSERT_TRUE(writer.ok());
  // Wider than the retry budget: the append must fail for good.
  backend.ArmTransientAppendFault(backend.append_count(), 64);
  EXPECT_FALSE((*writer)->Append(WalEntryType::kInsertOp, {1}).ok());
  EXPECT_EQ((*writer)->durable_lsn(), 0u);
  // Sticky: the writer stays dead even once the backend heals.
  backend.ArmTransientAppendFault(~0ull, 0);
  EXPECT_FALSE((*writer)->Append(WalEntryType::kInsertOp, {2}).ok());
  EXPECT_FALSE((*writer)->Sync().ok());
}

TEST(WalGroupCommitTest, FsyncFailureIsStickyAndFatal) {
  FaultInjectingBackend backend(std::make_unique<MemoryFileBackend>(),
                                /*fault_at=*/~0ull, FaultMode::kFailStop);
  Result<std::unique_ptr<WalWriter>> writer =
      WalWriter::Create(&backend, SyncPolicy::EveryOp());
  ASSERT_TRUE(writer.ok());
  backend.ArmSyncFault(backend.sync_count());
  // The entry appends fine; the fsync fails, so the op is NOT
  // acknowledged and the writer is dead.
  EXPECT_FALSE((*writer)->Append(WalEntryType::kInsertOp, {1}).ok());
  EXPECT_TRUE(backend.fired());
  EXPECT_EQ((*writer)->durable_lsn(), 0u);
  EXPECT_FALSE((*writer)->Append(WalEntryType::kInsertOp, {2}).ok());
  EXPECT_FALSE((*writer)->Sync().ok());
}

// -------------------------------------------------- fault injection -----

TEST(FaultInjectorTest, FailStopDropsTheWholeWrite) {
  auto mem = std::make_unique<MemoryFileBackend>();
  auto disk = mem->disk();
  FaultInjectingBackend inj(std::move(mem), 1, FaultMode::kFailStop);
  ASSERT_TRUE(inj.Append("aaaa", 4).ok());
  EXPECT_FALSE(inj.Append("bbbb", 4).ok());
  EXPECT_TRUE(inj.fired());
  EXPECT_EQ(disk->size(), 4u);
  // Dead for good, including reads and later writes.
  EXPECT_FALSE(inj.Append("cccc", 4).ok());
  char buf[1];
  EXPECT_FALSE(inj.ReadAt(0, buf, 1).ok());
  EXPECT_FALSE(inj.Sync().ok());
  EXPECT_EQ(inj.append_count(), 2u);
}

TEST(FaultInjectorTest, ShortWriteLandsAStrictPrefix) {
  auto mem = std::make_unique<MemoryFileBackend>();
  auto disk = mem->disk();
  FaultInjectingBackend inj(std::move(mem), 0, FaultMode::kShortWrite);
  EXPECT_FALSE(inj.Append("abcdefgh", 8).ok());
  EXPECT_LT(disk->size(), 8u);
  // Whatever landed is a prefix of the original bytes.
  EXPECT_EQ(MemoryFileBackend::Bytes(disk->begin(), disk->end()),
            MemoryFileBackend::Bytes("abcdefgh",
                                     "abcdefgh" + disk->size()));
}

TEST(FaultInjectorTest, TornWriteKeepsLengthButGarblesTail) {
  auto mem = std::make_unique<MemoryFileBackend>();
  auto disk = mem->disk();
  FaultInjectingBackend inj(std::move(mem), 0, FaultMode::kTornWrite);
  EXPECT_FALSE(inj.Append(std::string(64, 'z').data(), 64).ok());
  EXPECT_EQ(disk->size(), 64u);
  // Deterministic: the same seed yields the same garbage.
  auto mem2 = std::make_unique<MemoryFileBackend>();
  auto disk2 = mem2->disk();
  FaultInjectingBackend inj2(std::move(mem2), 0, FaultMode::kTornWrite);
  EXPECT_FALSE(inj2.Append(std::string(64, 'z').data(), 64).ok());
  EXPECT_EQ(*disk, *disk2);
}

// Read faults model a flaky device rather than a dying one: the backend
// keeps serving after the fault window. The write fault is parked far
// past the workload so only the read path misbehaves.
constexpr uint64_t kNoWriteFault = 1ull << 40;

TEST(FaultInjectorTest, BitFlipSilentlyCorruptsOneBit) {
  auto mem = std::make_unique<MemoryFileBackend>();
  ASSERT_TRUE(mem->Append("abcdefgh", 8).ok());
  FaultInjectingBackend inj(std::move(mem), kNoWriteFault,
                            FaultMode::kFailStop);
  inj.ArmReadFault(ReadFaultMode::kBitFlip, /*fault_at=*/0);
  char buf[8];
  // The faulted read *succeeds* -- the corruption is silent.
  ASSERT_TRUE(inj.ReadAt(0, buf, 8).ok());
  int flipped_bits = 0;
  for (int i = 0; i < 8; ++i) {
    flipped_bits += __builtin_popcount(
        static_cast<uint8_t>(buf[i]) ^ static_cast<uint8_t>("abcdefgh"[i]));
  }
  EXPECT_EQ(flipped_bits, 1);
  EXPECT_EQ(inj.read_faults_fired(), 1u);
  // Outside the window the device reads clean again.
  ASSERT_TRUE(inj.ReadAt(0, buf, 8).ok());
  EXPECT_EQ(MemoryFileBackend::Bytes(buf, buf + 8),
            MemoryFileBackend::Bytes("abcdefgh", "abcdefgh" + 8));
  EXPECT_EQ(inj.read_faults_fired(), 1u);
}

TEST(FaultInjectorTest, ShortReadFailsUnavailableThenRecovers) {
  auto mem = std::make_unique<MemoryFileBackend>();
  ASSERT_TRUE(mem->Append("abcdefgh", 8).ok());
  FaultInjectingBackend inj(std::move(mem), kNoWriteFault,
                            FaultMode::kFailStop);
  inj.ArmReadFault(ReadFaultMode::kShortRead, /*fault_at=*/0);
  char buf[8];
  const Status s = inj.ReadAt(0, buf, 8);
  EXPECT_EQ(s.code(), StatusCode::kUnavailable) << s.ToString();
  ASSERT_TRUE(inj.ReadAt(0, buf, 8).ok());
  EXPECT_EQ(MemoryFileBackend::Bytes(buf, buf + 8),
            MemoryFileBackend::Bytes("abcdefgh", "abcdefgh" + 8));
}

TEST(FaultInjectorTest, TransientEioClearsAfterItsWindow) {
  auto mem = std::make_unique<MemoryFileBackend>();
  ASSERT_TRUE(mem->Append("abcdefgh", 8).ok());
  FaultInjectingBackend inj(std::move(mem), kNoWriteFault,
                            FaultMode::kFailStop);
  inj.ArmReadFault(ReadFaultMode::kTransientEio, /*fault_at=*/1,
                   /*count=*/2);
  char buf[8];
  ASSERT_TRUE(inj.ReadAt(0, buf, 8).ok());  // read 0: before the window
  EXPECT_EQ(inj.ReadAt(0, buf, 8).code(), StatusCode::kUnavailable);
  EXPECT_EQ(inj.ReadAt(0, buf, 8).code(), StatusCode::kUnavailable);
  ASSERT_TRUE(inj.ReadAt(0, buf, 8).ok());  // read 3: window over
  EXPECT_EQ(inj.read_count(), 4u);
  EXPECT_EQ(inj.read_faults_fired(), 2u);
  // A flaky device is not a dead one: writes still land.
  EXPECT_TRUE(inj.Append("x", 1).ok());
}

// ----------------------------------------------------- page hardening ---

TEST(PageImageTest, RoundTripsThroughRawBytes) {
  Page page(512);
  const uint16_t s0 = *page.Insert(std::vector<uint8_t>(100, 1));
  const uint16_t s1 = *page.Insert(std::vector<uint8_t>(50, 2));
  ASSERT_TRUE(page.Free(s0).ok());
  Result<Page> copy = Page::FromImage(page.image());
  ASSERT_TRUE(copy.ok()) << copy.status().ToString();
  EXPECT_EQ(copy->slot_count(), page.slot_count());
  EXPECT_EQ(copy->free_slot_count(), 1u);
  EXPECT_EQ(copy->LiveBytes(), 50u);
  EXPECT_EQ(copy->FreeTotal(), page.FreeTotal());
  const auto got = copy->Get(s1);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->second, 50u);
  EXPECT_EQ(got->first[0], 2);
  EXPECT_FALSE(copy->Get(s0).ok());
}

TEST(PageImageTest, RejectsCorruptImages) {
  // Too small to hold even the header and one directory entry.
  EXPECT_FALSE(Page::FromImage(std::vector<uint8_t>(8, 0)).ok());

  Page good(256);
  ASSERT_TRUE(good.Insert(std::vector<uint8_t>(10, 1)).ok());

  // payload_end past the directory.
  std::vector<uint8_t> img = good.image();
  img[0] = 0xFF;
  img[1] = 0xFF;
  EXPECT_FALSE(Page::FromImage(img).ok());

  // Slot count larger than the page can hold.
  img = good.image();
  img[4] = 0xFF;
  img[5] = 0xFF;
  EXPECT_FALSE(Page::FromImage(img).ok());

  // Directory entry pointing outside the payload area. The single slot's
  // entry occupies the last 8 bytes: offset at [248, 252).
  img = good.image();
  img[248] = 0xF0;
  EXPECT_FALSE(Page::FromImage(img).ok());

  // A tombstone must have length zero.
  Page freed(256);
  const uint16_t slot = *freed.Insert(std::vector<uint8_t>(10, 1));
  ASSERT_TRUE(freed.Free(slot).ok());
  img = freed.image();
  img[252] = 5;  // tombstone length
  EXPECT_FALSE(Page::FromImage(img).ok());
}

TEST(BufferPoolTest, CreateRejectsZeroCapacity) {
  EXPECT_FALSE(LruBufferPool::Create(0).ok());
  Result<LruBufferPool> pool = LruBufferPool::Create(4);
  ASSERT_TRUE(pool.ok());
  EXPECT_EQ(pool->capacity(), 4u);
}

TEST(BufferManagerTest, TracksAndClearsDirtyPages) {
  BufferManager buf;
  buf.MarkDirty(3);
  buf.MarkDirty(1);
  buf.MarkDirty(3);
  EXPECT_EQ(buf.dirty_count(), 2u);
  EXPECT_TRUE(buf.IsDirty(1));
  EXPECT_FALSE(buf.IsDirty(2));
  EXPECT_EQ(buf.DirtyPagesSorted(), (std::vector<uint32_t>{1, 3}));
  buf.MarkAllClean();
  EXPECT_EQ(buf.dirty_count(), 0u);
}

// ------------------------------------------------- durable store --------

constexpr TotalWeight kLimit = 64;
constexpr uint64_t kWorkloadSeed = 20250805;
constexpr int kWorkloadInserts = 1000;
constexpr int kCheckpointEvery = 250;

ImportedDocument ImportSmall() {
  WeightModel model;
  model.max_node_slots = static_cast<uint32_t>(kLimit);
  Result<ImportedDocument> imp = ImportXml(GenerateXmark(5, 0.003), model);
  EXPECT_TRUE(imp.ok()) << imp.status().ToString();
  return std::move(imp).value();
}

NatixStore MakeStore() {
  ImportedDocument doc = ImportSmall();
  Result<Partitioning> p = EkmPartition(doc.tree, kLimit);
  EXPECT_TRUE(p.ok());
  Result<NatixStore> store = NatixStore::Build(std::move(doc), *p, kLimit);
  EXPECT_TRUE(store.ok()) << store.status().ToString();
  return std::move(store).value();
}

/// One scripted random insert. Both the workload and the oracle call this
/// with equal-seeded Rngs; because each op is generated from the current
/// tree state and both stores evolve identically, equal op *counts* imply
/// equal op *sequences* (prefix determinism).
Result<NodeId> ScriptedInsert(NatixStore* store, Rng* rng) {
  static constexpr const char* kLabels[] = {"item", "note", "entry", "x"};
  const Tree& t = store->tree();
  const NodeId parent = static_cast<NodeId>(rng->NextBounded(t.size()));
  NodeId before = kInvalidNode;
  if (t.ChildCount(parent) > 0 && rng->NextBool(0.4)) {
    const std::vector<NodeId> kids = t.Children(parent);
    before = kids[rng->NextBounded(kids.size())];
  }
  const bool text = rng->NextBool(0.5);
  std::string content;
  if (text) {
    content.assign(1 + rng->NextBounded(40),
                   static_cast<char>('a' + rng->NextBounded(26)));
  }
  return store->InsertBefore(parent, before,
                             text ? "" : kLabels[rng->NextBounded(4)],
                             text ? NodeKind::kText : NodeKind::kElement,
                             content);
}

/// Runs the scripted workload against a durable store whose backend kills
/// itself at `fault_at` (pass a huge value for a fault-free run). Returns
/// the surviving "disk" bytes; the store itself is destroyed -- that is
/// the crash.
std::shared_ptr<MemoryFileBackend::Bytes> RunWorkloadUntilCrash(
    uint64_t fault_at, FaultMode mode, uint64_t* total_appends = nullptr) {
  NatixStore store = MakeStore();
  auto mem = std::make_unique<MemoryFileBackend>();
  std::shared_ptr<MemoryFileBackend::Bytes> disk = mem->disk();
  auto inj = std::make_unique<FaultInjectingBackend>(
      std::move(mem), fault_at, mode,
      /*seed=*/kWorkloadSeed ^ fault_at ^ (static_cast<uint64_t>(mode) << 32));
  FaultInjectingBackend* inj_raw = inj.get();
  Rng rng(kWorkloadSeed);
  // The legacy policy keeps one op = one backend Append, so fault indices
  // stay deterministic (group commit would batch by wall clock). The
  // power-loss matrix below covers the buffered policies.
  if (store.EnableDurability(std::move(inj), SyncPolicy::OnCheckpoint())
          .ok()) {
    for (int i = 0; i < kWorkloadInserts; ++i) {
      if (!ScriptedInsert(&store, &rng).ok()) break;
      if ((i + 1) % kCheckpointEvery == 0 && !store.Checkpoint().ok()) break;
    }
  }
  if (total_appends != nullptr) *total_appends = inj_raw->append_count();
  return disk;
}

/// Advances the reference store (which never crashes) to `target` ops.
void AdvanceOracle(NatixStore* oracle, Rng* rng, uint64_t* done,
                   uint64_t target) {
  ASSERT_LE(*done, target) << "fault points must be visited in ascending "
                              "order for the shared oracle";
  while (*done < target) {
    ASSERT_TRUE(ScriptedInsert(oracle, rng).ok());
    ++*done;
  }
}

/// The crash-matrix oracle: the recovered store must hold exactly the
/// oracle's document and answer every XPathMark query identically.
void ExpectEquivalent(const NatixStore& recovered, const NatixStore& oracle,
                      const std::string& context) {
  const Tree& rt = recovered.tree();
  const Tree& ot = oracle.tree();
  ASSERT_EQ(rt.size(), ot.size()) << context;
  for (NodeId v = 0; v < rt.size(); ++v) {
    ASSERT_EQ(rt.Parent(v), ot.Parent(v)) << context << " node " << v;
    ASSERT_EQ(rt.FirstChild(v), ot.FirstChild(v)) << context << " node " << v;
    ASSERT_EQ(rt.NextSibling(v), ot.NextSibling(v))
        << context << " node " << v;
    ASSERT_EQ(rt.WeightOf(v), ot.WeightOf(v)) << context << " node " << v;
    ASSERT_EQ(rt.KindOf(v), ot.KindOf(v)) << context << " node " << v;
    ASSERT_EQ(rt.LabelOf(v), ot.LabelOf(v)) << context << " node " << v;
    ASSERT_EQ(recovered.document().ContentOf(v), oracle.document().ContentOf(v))
        << context << " node " << v;
  }
  // The recovered partitioning must be feasible, not just present.
  if (recovered.partitioner() != nullptr) {
    ASSERT_TRUE(recovered.partitioner()->Validate().ok()) << context;
  }
  // Query equivalence against the uncrashed run, straight from the
  // stores' records.
  AccessStats rstats, ostats;
  StoreQueryEvaluator reval(&recovered, &rstats);
  StoreQueryEvaluator oeval(&oracle, &ostats);
  for (const XPathMarkQuery& q : XPathMarkQueries()) {
    const Result<PathExpr> path = ParseXPath(q.text);
    ASSERT_TRUE(path.ok()) << q.id;
    const Result<std::vector<NodeId>> got = reval.Evaluate(*path);
    const Result<std::vector<NodeId>> want = oeval.Evaluate(*path);
    ASSERT_TRUE(got.ok() && want.ok()) << context << " " << q.id;
    ASSERT_EQ(*got, *want) << context << " " << q.id;
  }
}

TEST(DurableStoreTest, CleanStopRecoversExactly) {
  const std::shared_ptr<MemoryFileBackend::Bytes> disk =
      RunWorkloadUntilCrash(~0ull, FaultMode::kFailStop);
  Result<NatixStore> recovered =
      NatixStore::Recover(std::make_unique<MemoryFileBackend>(disk));
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_TRUE(recovered->durable());
  EXPECT_EQ(recovered->update_stats().inserts,
            static_cast<uint64_t>(kWorkloadInserts));

  NatixStore oracle = MakeStore();
  Rng rng(kWorkloadSeed);
  uint64_t done = 0;
  AdvanceOracle(&oracle, &rng, &done, kWorkloadInserts);
  ExpectEquivalent(*recovered, oracle, "clean stop");
}

TEST(DurableStoreTest, OpLogStaysUnderTwiceRecordVolume) {
  NatixStore store = MakeStore();
  ASSERT_TRUE(
      store.EnableDurability(std::make_unique<MemoryFileBackend>()).ok());
  Rng rng(kWorkloadSeed);
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(ScriptedInsert(&store, &rng).ok());
  }
  const WalStats stats = store.wal_stats();
  EXPECT_EQ(stats.op_entries, 500u);
  EXPECT_GT(stats.record_bytes, 0u);
  // The acceptance bound: logical op logging must cost well under 2x the
  // record bytes the same ops wrote.
  EXPECT_LT(stats.op_bytes, 2 * stats.record_bytes);
  EXPECT_GT(stats.OpAmplification(), 0.0);
  EXPECT_LT(stats.OpAmplification(), 2.0);
}

TEST(DurableStoreTest, RecoverOnEmptyOrAlienBytesFails) {
  EXPECT_FALSE(
      NatixStore::Recover(std::make_unique<MemoryFileBackend>()).ok());
  auto junk = std::make_unique<MemoryFileBackend>();
  ASSERT_TRUE(junk->Append("definitely not a WAL", 20).ok());
  EXPECT_FALSE(NatixStore::Recover(std::move(junk)).ok());
}

TEST(DurableStoreTest, PoisonedStoreRefusesFurtherMutations) {
  NatixStore store = MakeStore();
  // Fault on the 2nd append: the magic is append 0 and the initial
  // checkpoint installs as one atomic group append (1), so the fault
  // lands mid-install. A torn checkpoint group cannot be fenced off by
  // truncating to a watermark, so this demotes straight to kFailed --
  // mutations and rehabilitation are both refused.
  auto inj = std::make_unique<FaultInjectingBackend>(
      std::make_unique<MemoryFileBackend>(), 1, FaultMode::kFailStop);
  EXPECT_FALSE(store.EnableDurability(std::move(inj)).ok());
  EXPECT_TRUE(store.poisoned());
  EXPECT_EQ(store.health(), StoreHealth::kFailed);
  EXPECT_FALSE(store.health_reason().empty());
  EXPECT_FALSE(
      store.InsertBefore(store.tree().root(), kInvalidNode, "x").ok());
  EXPECT_FALSE(store.Checkpoint().ok());
  const Status rehab = store.TryRehabilitate();
  EXPECT_EQ(rehab.code(), StatusCode::kFailedPrecondition)
      << rehab.ToString();
  EXPECT_EQ(store.health(), StoreHealth::kFailed);
}

TEST(DurableStoreTest, CrashMatrixRecoversToQueryEquivalence) {
  // Size the matrix: count the workload's total backend writes with a
  // never-firing injector, then visit strided fault points. Exhaustive
  // coverage (every append x every mode) is available via
  // NATIX_CRASH_MATRIX_EXHAUSTIVE=1.
  uint64_t total_appends = 0;
  RunWorkloadUntilCrash(~0ull, FaultMode::kFailStop, &total_appends);
  ASSERT_GT(total_appends, static_cast<uint64_t>(kWorkloadInserts));

  const bool exhaustive = std::getenv("NATIX_CRASH_MATRIX_EXHAUSTIVE") != nullptr;
  const uint64_t stride =
      exhaustive ? 1 : std::max<uint64_t>(1, total_appends / 24);

  NatixStore oracle = MakeStore();
  Rng oracle_rng(kWorkloadSeed);
  uint64_t oracle_done = 0;
  int recovered_trials = 0;
  int never_durable_trials = 0;

  for (uint64_t fault_at = 0; fault_at < total_appends; fault_at += stride) {
    for (const FaultMode mode :
         {FaultMode::kFailStop, FaultMode::kShortWrite,
          FaultMode::kTornWrite}) {
      const std::string context =
          "fault at append " + std::to_string(fault_at) + " mode " +
          std::to_string(static_cast<int>(mode));
      const std::shared_ptr<MemoryFileBackend::Bytes> disk =
          RunWorkloadUntilCrash(fault_at, mode);
      Result<NatixStore> recovered =
          NatixStore::Recover(std::make_unique<MemoryFileBackend>(disk));
      if (!recovered.ok()) {
        // Legitimate only while the initial checkpoint had not been
        // sealed: the store never reached durability, there is nothing
        // to recover. Magic (1) + the atomic checkpoint install (1) +
        // the op stream; anything at or past the first op entry must
        // recover.
        ASSERT_LT(fault_at, total_appends - kWorkloadInserts)
            << context << ": " << recovered.status().ToString();
        ++never_durable_trials;
        continue;
      }
      ++recovered_trials;
      const uint64_t m = recovered->update_stats().inserts;
      ASSERT_LE(m, static_cast<uint64_t>(kWorkloadInserts)) << context;
      AdvanceOracle(&oracle, &oracle_rng, &oracle_done, m);
      ASSERT_EQ(oracle_done, m) << context;
      ExpectEquivalent(*recovered, oracle, context);
    }
  }
  // The matrix must actually exercise recovery, not skip everything.
  EXPECT_GT(recovered_trials, 0);
  // And a crash during the very first writes must be the only way to end
  // up with an unrecoverable log.
  EXPECT_LT(never_durable_trials, recovered_trials);
}

TEST(DurableStoreTest, SurvivesCrashRecoverContinueCrash) {
  // First crash: torn write in the middle of the op stream.
  const std::shared_ptr<MemoryFileBackend::Bytes> disk =
      RunWorkloadUntilCrash(300, FaultMode::kTornWrite);
  Result<NatixStore> recovered =
      NatixStore::Recover(std::make_unique<MemoryFileBackend>(disk));
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  const uint64_t m = recovered->update_stats().inserts;

  NatixStore oracle = MakeStore();
  Rng oracle_rng(kWorkloadSeed);
  uint64_t oracle_done = 0;
  AdvanceOracle(&oracle, &oracle_rng, &oracle_done, m);

  // Continue on the recovered store; mirror every op on the oracle (the
  // trees are identical, so equal-seeded generators produce equal ops).
  Rng cont_a(777), cont_b(777);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(ScriptedInsert(&*recovered, &cont_a).ok()) << "continue " << i;
    ASSERT_TRUE(ScriptedInsert(&oracle, &cont_b).ok());
  }
  ASSERT_TRUE(recovered->Checkpoint().ok());
  // A few more un-checkpointed ops, then crash again (destruction).
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(ScriptedInsert(&*recovered, &cont_a).ok());
    ASSERT_TRUE(ScriptedInsert(&oracle, &cont_b).ok());
  }
  recovered = Status::Internal("crashed");  // destroy the first recovery

  Result<NatixStore> again =
      NatixStore::Recover(std::make_unique<MemoryFileBackend>(disk));
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(again->update_stats().inserts, m + 250);
  ExpectEquivalent(*again, oracle, "second recovery");
}

// --------------------------------------- durability acknowledgement -----

TEST(DurableStoreTest, TransientAppendFaultsAreAbsorbedByRetry) {
  NatixStore store = MakeStore();
  auto inj = std::make_unique<FaultInjectingBackend>(
      std::make_unique<MemoryFileBackend>(), /*fault_at=*/~0ull,
      FaultMode::kFailStop);
  FaultInjectingBackend* raw = inj.get();
  ASSERT_TRUE(
      store.EnableDurability(std::move(inj), SyncPolicy::EveryOp()).ok());
  Rng rng(kWorkloadSeed);
  // Two flaky appends sit inside the writer's retry budget: the op must
  // succeed and the store must stay healthy.
  raw->ArmTransientAppendFault(raw->append_count(), 2);
  ASSERT_TRUE(ScriptedInsert(&store, &rng).ok());
  EXPECT_FALSE(store.poisoned());
  EXPECT_EQ(raw->append_faults_fired(), 2u);
  EXPECT_EQ(store.wal_stats().append_retries, 2u);
  EXPECT_EQ(store.last_wal_lsn(), store.durable_wal_lsn());

  // A storm wider than the budget must fail the op and demote the store
  // to degraded, exactly like a hard append failure.
  raw->ArmTransientAppendFault(raw->append_count(), 64);
  EXPECT_FALSE(ScriptedInsert(&store, &rng).ok());
  EXPECT_TRUE(store.poisoned());
  EXPECT_EQ(store.health(), StoreHealth::kDegraded);
  EXPECT_FALSE(
      store.InsertBefore(store.tree().root(), kInvalidNode, "x").ok());
}

TEST(DurableStoreTest, FsyncFailurePoisonsLikeAppendFailure) {
  // Every-op flavor: the failed fsync surfaces through the op itself.
  {
    NatixStore store = MakeStore();
    auto inj = std::make_unique<FaultInjectingBackend>(
        std::make_unique<MemoryFileBackend>(), /*fault_at=*/~0ull,
        FaultMode::kFailStop);
    FaultInjectingBackend* raw = inj.get();
    ASSERT_TRUE(
        store.EnableDurability(std::move(inj), SyncPolicy::EveryOp()).ok());
    raw->ArmSyncFault(raw->sync_count());
    Rng rng(kWorkloadSeed);
    EXPECT_FALSE(ScriptedInsert(&store, &rng).ok());
    EXPECT_TRUE(store.poisoned());
    EXPECT_EQ(store.health(), StoreHealth::kDegraded);
    EXPECT_FALSE(store.Checkpoint().ok());
    // Degraded, not dead: the MVCC read path never touches the WAL, so
    // snapshots still open and navigate.
    AccessStats stats;
    Navigator nav(&store, &stats);
    nav.JumpToRoot();
    EXPECT_TRUE(nav.ToFirstChild());
  }
  // Group-commit flavor: the op is acknowledged from the buffer; the
  // explicit durability barrier reports the failure and poisons.
  {
    NatixStore store = MakeStore();
    auto inj = std::make_unique<FaultInjectingBackend>(
        std::make_unique<MemoryFileBackend>(), /*fault_at=*/~0ull,
        FaultMode::kFailStop);
    FaultInjectingBackend* raw = inj.get();
    // A far-future window so the background flusher cannot reach the
    // armed fault before SyncWal does.
    ASSERT_TRUE(store
                    .EnableDurability(
                        std::move(inj),
                        SyncPolicy::GroupCommit(/*window_us=*/60'000'000,
                                                /*max_ops=*/1u << 20,
                                                /*max_bytes=*/1u << 30))
                    .ok());
    raw->ArmSyncFault(raw->sync_count());
    Rng rng(kWorkloadSeed);
    EXPECT_TRUE(ScriptedInsert(&store, &rng).ok());  // buffered, acked
    EXPECT_FALSE(store.SyncWal().ok());
    EXPECT_TRUE(store.poisoned());
    EXPECT_EQ(store.health(), StoreHealth::kDegraded);
    EXPECT_FALSE(
        store.InsertBefore(store.tree().root(), kInvalidNode, "x").ok());
  }
}

TEST(DurableStoreTest, DegradedStoreServesReadsThenRehabilitates) {
  std::optional<NatixStore> store(MakeStore());
  NatixStore oracle = MakeStore();
  auto mem = std::make_unique<MemoryFileBackend>();
  const std::shared_ptr<MemoryFileBackend::Bytes> disk = mem->disk();
  auto inj = std::make_unique<FaultInjectingBackend>(
      std::move(mem), /*fault_at=*/~0ull, FaultMode::kFailStop);
  FaultInjectingBackend* raw = inj.get();
  // A far-future commit window so the test controls every flush.
  ASSERT_TRUE((*store)
                  .EnableDurability(
                      std::move(inj),
                      SyncPolicy::GroupCommit(/*window_us=*/60'000'000,
                                              /*max_ops=*/1u << 20,
                                              /*max_bytes=*/1u << 30))
                  .ok());
  Rng rng_a(kWorkloadSeed), rng_b(kWorkloadSeed);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(ScriptedInsert(&*store, &rng_a).ok());
    ASSERT_TRUE(ScriptedInsert(&oracle, &rng_b).ok());
  }
  ASSERT_TRUE(store->SyncWal().ok());

  // The device dies at the next fsync: the explicit barrier fails and
  // the store demotes to Degraded.
  raw->ArmSyncFault(raw->sync_count());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(ScriptedInsert(&*store, &rng_a).ok());  // buffered, acked
    ASSERT_TRUE(ScriptedInsert(&oracle, &rng_b).ok());
  }
  ASSERT_FALSE(store->SyncWal().ok());
  ASSERT_EQ(store->health(), StoreHealth::kDegraded);

  // Invariant: a Degraded store keeps serving snapshot-consistent reads
  // that match the oracle -- the MVCC read path never touches the WAL.
  ExpectEquivalent(*store, oracle, "degraded serving");
  // ... while every mutation is refused with FailedPrecondition.
  const Status refused =
      store->InsertBefore(store->tree().root(), kInvalidNode, "x").status();
  EXPECT_EQ(refused.code(), StatusCode::kFailedPrecondition)
      << refused.ToString();
  EXPECT_FALSE(store->DeleteSubtree(1).ok());

  // With the backend still dead, rehabilitation fails but is retryable:
  // the store stays Degraded rather than falling to Failed.
  EXPECT_FALSE(store->TryRehabilitate().ok());
  EXPECT_EQ(store->health(), StoreHealth::kDegraded);

  // The operator swaps the cable; rehabilitation truncates back to the
  // valid prefix, re-attaches and re-checkpoints -- Healthy again.
  raw->Revive();
  const Status rehab = store->TryRehabilitate();
  ASSERT_TRUE(rehab.ok()) << rehab.ToString();
  EXPECT_EQ(store->health(), StoreHealth::kHealthy);
  EXPECT_FALSE(store->poisoned());
  EXPECT_TRUE(store->health_reason().empty());

  // Writes flow again, and the log is coherent: a recovery of the final
  // bytes must reproduce the store exactly.
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(ScriptedInsert(&*store, &rng_a).ok());
    ASSERT_TRUE(ScriptedInsert(&oracle, &rng_b).ok());
  }
  ASSERT_TRUE(store->SyncWal().ok());
  ExpectEquivalent(*store, oracle, "after rehabilitation");

  store.reset();  // clean crash: drop the store, keep the disk
  Result<NatixStore> recovered =
      NatixStore::Recover(std::make_unique<MemoryFileBackend>(disk));
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  ExpectEquivalent(*recovered, oracle, "recovery after rehabilitation");
}

TEST(DurableStoreTest, DiskFullIsBackpressureNotDemotion) {
  std::optional<NatixStore> store(MakeStore());
  auto mem = std::make_unique<MemoryFileBackend>();
  const std::shared_ptr<MemoryFileBackend::Bytes> disk = mem->disk();
  auto inj = std::make_unique<FaultInjectingBackend>(
      std::move(mem), /*fault_at=*/~0ull, FaultMode::kFailStop);
  FaultInjectingBackend* raw = inj.get();
  ASSERT_TRUE(
      store->EnableDurability(std::move(inj), SyncPolicy::EveryOp()).ok());
  ASSERT_TRUE(
      store->InsertBefore(store->tree().root(), kInvalidNode, "a").ok());

  // The disk fills: the next op's entry cannot land. The op stays
  // applied in memory with its entry parked in the writer, the caller
  // sees ResourceExhausted, and the store stays Healthy -- ENOSPC is
  // backpressure, not a failure the log diverged over.
  const Result<uint64_t> full_at = raw->Size();
  ASSERT_TRUE(full_at.ok());
  raw->ArmCapacityLimit(*full_at + 4);
  const Status enospc =
      store->InsertBefore(store->tree().root(), kInvalidNode, "b").status();
  EXPECT_EQ(enospc.code(), StatusCode::kResourceExhausted)
      << enospc.ToString();
  EXPECT_EQ(store->health(), StoreHealth::kHealthy);
  EXPECT_FALSE(store->poisoned());
  // Not durable yet either: the entry is parked, not acked.
  EXPECT_LT(store->durable_wal_lsn(), store->last_wal_lsn());

  // Space frees; the parked entry lands on the next explicit barrier and
  // the write path needs no rehabilitation.
  raw->ArmCapacityLimit(FaultInjectingBackend::kNoLimit);
  ASSERT_TRUE(store->SyncWal().ok());
  EXPECT_EQ(store->durable_wal_lsn(), store->last_wal_lsn());
  ASSERT_TRUE(
      store->InsertBefore(store->tree().root(), kInvalidNode, "c").ok());
  ASSERT_TRUE(store->SyncWal().ok());

  // All three inserts -- including the one that hit ENOSPC -- are in the
  // log: recovery replays them and fsck-style audit finds nothing torn.
  store.reset();
  RecoveryInfo info;
  Result<NatixStore> recovered = NatixStore::Recover(
      std::make_unique<MemoryFileBackend>(disk), &info);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered->update_stats().inserts, 3u);
  EXPECT_FALSE(info.tail_was_torn);
}

TEST(DurableStoreTest, GroupCommitBatchesStoreFsyncs) {
  NatixStore store = MakeStore();
  ASSERT_TRUE(store
                  .EnableDurability(
                      std::make_unique<MemoryFileBackend>(),
                      SyncPolicy::GroupCommit(/*window_us=*/60'000'000,
                                              /*max_ops=*/32,
                                              /*max_bytes=*/1u << 30))
                  .ok());
  Rng rng(kWorkloadSeed);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(ScriptedInsert(&store, &rng).ok());
  }
  ASSERT_TRUE(store.SyncWal().ok());
  const WalStats stats = store.wal_stats();
  EXPECT_EQ(stats.op_entries, 200u);
  EXPECT_EQ(stats.durable_lsn, stats.last_lsn);
  EXPECT_GT(stats.sync_batches, 0u);
  // 200 ops at <= 32 per batch plus the initial checkpoint: far fewer
  // fsyncs than one per op.
  EXPECT_LT(stats.sync_batches, 32u);
  EXPECT_GT(stats.MeanBatchOps(), 1.0);
}

TEST(DurableStoreTest, RecoveryMakesTornTailTruncationDurable) {
  // Crash #1 leaves a torn tail mid-way through the op stream.
  const std::shared_ptr<MemoryFileBackend::Bytes> disk =
      RunWorkloadUntilCrash(300, FaultMode::kTornWrite);

  // Recover through a power-loss-tracking wrapper: recovery must
  // truncate the torn tail AND fsync the truncation before appending
  // anything new.
  auto inner = std::make_unique<MemoryFileBackend>(
      std::make_shared<MemoryFileBackend::Bytes>(*disk));
  auto inj = std::make_unique<FaultInjectingBackend>(
      std::move(inner), /*fault_at=*/~0ull, FaultMode::kFailStop);
  FaultInjectingBackend* raw = inj.get();
  RecoveryInfo info;
  Result<NatixStore> recovered = NatixStore::Recover(std::move(inj), &info);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  ASSERT_TRUE(info.tail_was_torn);
  const uint64_t m = recovered->update_stats().inserts;

  // Crash #2 strikes immediately, before any further I/O. Without the
  // post-truncate fsync the truncation lives only in the page cache and
  // the torn bytes resurrect on the second recovery.
  Result<std::vector<uint8_t>> image = raw->DurableImage();
  ASSERT_TRUE(image.ok());
  recovered = Status::Internal("crashed again");

  RecoveryInfo second;
  Result<NatixStore> again = NatixStore::Recover(
      std::make_unique<MemoryFileBackend>(
          std::make_shared<MemoryFileBackend::Bytes>(*image)),
      &second);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_FALSE(second.tail_was_torn);
  EXPECT_EQ(second.torn_bytes, 0u);
  EXPECT_EQ(again->update_stats().inserts, m);
}

// ------------------------------------------------ power-loss matrix -----

/// One plug-pull trial: how many ops the workload applied in memory, how
/// many had been acknowledged durable when the power died, and the bytes
/// that actually survive (the un-fsynced WAL suffix is DROPPED, not
/// torn).
struct PowerLossTrial {
  uint64_t attempted = 0;
  uint64_t acked = 0;
  std::vector<uint8_t> image;
};

/// Runs `ops` scripted inserts under `policy` on a power-loss-tracking
/// backend, then pulls the plug. The watermark is read BEFORE the image:
/// the background flusher may advance both concurrently, and
/// watermark-then-image keeps `acked` a lower bound on what the image
/// holds. The store object dies afterwards -- its destructor cannot
/// influence the already-captured image.
PowerLossTrial RunPowerLossWorkload(const SyncPolicy& policy, int ops) {
  PowerLossTrial trial;
  NatixStore store = MakeStore();
  auto inj = std::make_unique<FaultInjectingBackend>(
      std::make_unique<MemoryFileBackend>(), /*fault_at=*/~0ull,
      FaultMode::kFailStop);
  FaultInjectingBackend* raw = inj.get();
  EXPECT_TRUE(store.EnableDurability(std::move(inj), policy).ok());
  Rng rng(kWorkloadSeed);
  std::vector<uint64_t> op_lsns;
  for (int i = 0; i < ops; ++i) {
    EXPECT_TRUE(ScriptedInsert(&store, &rng).ok());
    op_lsns.push_back(store.last_wal_lsn());
    if ((i + 1) % kCheckpointEvery == 0) {
      EXPECT_TRUE(store.Checkpoint().ok());
    }
  }
  trial.attempted = static_cast<uint64_t>(ops);
  const uint64_t durable = store.durable_wal_lsn();
  for (const uint64_t lsn : op_lsns) {
    trial.acked += lsn <= durable ? 1u : 0u;
  }
  Result<std::vector<uint8_t>> image = raw->DurableImage();
  EXPECT_TRUE(image.ok());
  if (image.ok()) trial.image = *std::move(image);
  return trial;
}

TEST(DurableStoreTest, PowerLossMatrixKeepsEveryAcknowledgedOp) {
  // Plug-pull points strided through the workload, under both durable
  // policies. Two-sided contract per trial: no acknowledged op may be
  // lost, no op may be invented; the recovered prefix must match the
  // oracle exactly.
  constexpr int kOps = 400;
  constexpr int kStride = 50;
  const SyncPolicy policies[] = {SyncPolicy::EveryOp(),
                                 SyncPolicy::GroupCommit()};
  for (const SyncPolicy& policy : policies) {
    struct RecoveredTrial {
      uint64_t m;
      NatixStore store;
    };
    std::vector<RecoveredTrial> recovered;
    for (int crash_at = kStride; crash_at <= kOps; crash_at += kStride) {
      const std::string context = std::string("policy ") + policy.ModeName() +
                                  " plug pulled after op " +
                                  std::to_string(crash_at);
      PowerLossTrial trial = RunPowerLossWorkload(policy, crash_at);
      ASSERT_FALSE(::testing::Test::HasFailure()) << context;
      Result<NatixStore> rec = NatixStore::Recover(
          std::make_unique<MemoryFileBackend>(
              std::make_shared<MemoryFileBackend::Bytes>(
                  std::move(trial.image))));
      ASSERT_TRUE(rec.ok()) << context << ": " << rec.status().ToString();
      const uint64_t m = rec->update_stats().inserts;
      ASSERT_GE(m, trial.acked) << context;
      ASSERT_LE(m, trial.attempted) << context;
      if (policy.mode == SyncPolicy::Mode::kSyncEveryOp) {
        // Every-op acknowledges synchronously: nothing applied was ever
        // un-durable, so recovery is exact.
        ASSERT_EQ(trial.acked, trial.attempted) << context;
        ASSERT_EQ(m, trial.attempted) << context;
      }
      recovered.push_back({m, std::move(rec).value()});
    }
    // Group-commit recovery depths are timing-dependent and not
    // monotone in crash_at; visit them sorted so the shared oracle only
    // ever advances.
    std::sort(recovered.begin(), recovered.end(),
              [](const RecoveredTrial& a, const RecoveredTrial& b) {
                return a.m < b.m;
              });
    NatixStore oracle = MakeStore();
    Rng oracle_rng(kWorkloadSeed);
    uint64_t oracle_done = 0;
    for (const RecoveredTrial& t : recovered) {
      AdvanceOracle(&oracle, &oracle_rng, &oracle_done, t.m);
      ExpectEquivalent(t.store, oracle,
                       std::string("power loss, ") + policy.ModeName() +
                           ", m=" + std::to_string(t.m));
    }
  }
}

// ------------------------------------------- mixed-op crash matrix ------

constexpr int kMixedOps = 600;
constexpr int kMixedCheckpointEvery = 150;

enum class MixedOpOutcome { kApplied, kSkipped, kFailed };

/// Live-node pick for the mixed workload; reads only the store's tables,
/// so equal-state stores with equal-seeded Rngs pick identically.
NodeId ScriptedPickLive(const NatixStore& store, Rng* rng) {
  const size_t n = store.tree().size();
  for (int tries = 0; tries < 256; ++tries) {
    const auto v = static_cast<NodeId>(rng->NextBounded(n));
    if (store.IsLiveNode(v)) return v;
  }
  return 0;
}

bool ScriptedSubtreeCapped(const Tree& t, NodeId v, size_t cap) {
  std::vector<NodeId> stack = {v};
  size_t n = 0;
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    if (++n > cap) return false;
    for (NodeId c = t.FirstChild(u); c != kInvalidNode; c = t.NextSibling(c)) {
      stack.push_back(c);
    }
  }
  return true;
}

/// One scripted mixed op: ~40% insert, 30% delete-subtree, 20%
/// move-subtree, 10% rename. Prefix-deterministic like ScriptedInsert --
/// every draw depends only on the shared Rng and the current tree state,
/// and a *skipped* pick (illegal delete/move target) consumes exactly the
/// same draws on every store. Equal applied-op counts therefore imply
/// equal op sequences. Deletes convert to inserts while the live count
/// sits under `size_floor` so the document cannot collapse mid-matrix.
MixedOpOutcome ScriptedMixedOp(NatixStore* store, Rng* rng,
                               size_t size_floor) {
  static constexpr const char* kLabels[] = {"item", "note", "entry", "x"};
  const Tree& t = store->tree();
  uint64_t roll = rng->NextBounded(100);
  if (roll >= 40 && roll < 70 && store->live_node_count() < size_floor) {
    roll = 0;
  }
  if (roll < 40) {
    const NodeId parent = ScriptedPickLive(*store, rng);
    NodeId before = kInvalidNode;
    if (t.ChildCount(parent) > 0 && rng->NextBool(0.4)) {
      const std::vector<NodeId> kids = t.Children(parent);
      before = kids[rng->NextBounded(kids.size())];
    }
    const bool text = rng->NextBool(0.5);
    std::string content;
    if (text) {
      content.assign(1 + rng->NextBounded(40),
                     static_cast<char>('a' + rng->NextBounded(26)));
    }
    return store
                   ->InsertBefore(parent, before,
                                  text ? "" : kLabels[rng->NextBounded(4)],
                                  text ? NodeKind::kText : NodeKind::kElement,
                                  content)
                   .ok()
               ? MixedOpOutcome::kApplied
               : MixedOpOutcome::kFailed;
  }
  if (roll < 70) {
    const NodeId v = ScriptedPickLive(*store, rng);
    if (v == 0 || !ScriptedSubtreeCapped(t, v, 16)) {
      return MixedOpOutcome::kSkipped;
    }
    return store->DeleteSubtree(v).ok() ? MixedOpOutcome::kApplied
                                        : MixedOpOutcome::kFailed;
  }
  if (roll < 90) {
    const NodeId v = ScriptedPickLive(*store, rng);
    const NodeId parent = ScriptedPickLive(*store, rng);
    if (v == 0) return MixedOpOutcome::kSkipped;
    for (NodeId a = parent; a != kInvalidNode; a = t.Parent(a)) {
      if (a == v) return MixedOpOutcome::kSkipped;
    }
    NodeId before = kInvalidNode;
    if (t.ChildCount(parent) > 0 && rng->NextBool(0.5)) {
      const std::vector<NodeId> kids = t.Children(parent);
      before = kids[rng->NextBounded(kids.size())];
      if (before == v) before = kInvalidNode;
    }
    return store->MoveSubtree(v, parent, before).ok()
               ? MixedOpOutcome::kApplied
               : MixedOpOutcome::kFailed;
  }
  return store->Rename(ScriptedPickLive(*store, rng),
                       kLabels[rng->NextBounded(4)])
                 .ok()
             ? MixedOpOutcome::kApplied
             : MixedOpOutcome::kFailed;
}

/// Mixed-stream twin of RunWorkloadUntilCrash: checkpoint cadence is
/// attempt-based (deterministic across runs), ops span all four mutation
/// kinds. Returns the surviving disk; optionally reports the fault-free
/// run's append and applied-op totals.
std::shared_ptr<MemoryFileBackend::Bytes> RunMixedWorkloadUntilCrash(
    uint64_t fault_at, FaultMode mode, uint64_t* total_appends = nullptr,
    uint64_t* total_applied = nullptr) {
  NatixStore store = MakeStore();
  auto mem = std::make_unique<MemoryFileBackend>();
  std::shared_ptr<MemoryFileBackend::Bytes> disk = mem->disk();
  auto inj = std::make_unique<FaultInjectingBackend>(
      std::move(mem), fault_at, mode,
      /*seed=*/kWorkloadSeed ^ fault_at ^
          (static_cast<uint64_t>(mode) << 32) ^ 0x9e3779b9ull);
  FaultInjectingBackend* inj_raw = inj.get();
  const size_t size_floor = store.live_node_count();
  Rng rng(kWorkloadSeed);
  uint64_t applied = 0;
  // Legacy policy for deterministic fault indices; see
  // RunWorkloadUntilCrash.
  if (store.EnableDurability(std::move(inj), SyncPolicy::OnCheckpoint())
          .ok()) {
    for (int i = 0; i < kMixedOps; ++i) {
      const MixedOpOutcome out = ScriptedMixedOp(&store, &rng, size_floor);
      if (out == MixedOpOutcome::kFailed) break;
      if (out == MixedOpOutcome::kApplied) ++applied;
      if ((i + 1) % kMixedCheckpointEvery == 0 && !store.Checkpoint().ok()) {
        break;
      }
    }
  }
  if (total_appends != nullptr) *total_appends = inj_raw->append_count();
  if (total_applied != nullptr) *total_applied = applied;
  return disk;
}

/// Advances the mixed oracle until `target` ops have *applied* (skips
/// consume rng draws but do not count, mirroring the crashed run).
void AdvanceMixedOracle(NatixStore* oracle, Rng* rng, size_t size_floor,
                        uint64_t* done, uint64_t target) {
  ASSERT_LE(*done, target) << "fault points must be visited in ascending "
                              "order for the shared mixed oracle";
  while (*done < target) {
    const MixedOpOutcome out = ScriptedMixedOp(oracle, rng, size_floor);
    ASSERT_NE(out, MixedOpOutcome::kFailed);
    if (out == MixedOpOutcome::kApplied) ++*done;
  }
}

uint64_t AppliedOps(const NatixStore& store) {
  const UpdateStats us = store.update_stats();
  return us.inserts + us.deletes + us.moves + us.renames;
}

TEST(DurableStoreTest, MixedCrashMatrixRecoversToQueryEquivalence) {
  // Fault-free pass sizes the matrix and pins the op totals the strided
  // crash runs are compared against.
  uint64_t total_appends = 0, total_applied = 0;
  {
    const std::shared_ptr<MemoryFileBackend::Bytes> disk =
        RunMixedWorkloadUntilCrash(~0ull, FaultMode::kFailStop,
                                   &total_appends, &total_applied);
    Result<NatixStore> clean =
        NatixStore::Recover(std::make_unique<MemoryFileBackend>(disk));
    ASSERT_TRUE(clean.ok()) << clean.status().ToString();
    const UpdateStats us = clean->update_stats();
    // The blend actually exercises every op kind before any crash runs.
    ASSERT_GT(us.inserts, 0u);
    ASSERT_GT(us.deletes, 0u);
    ASSERT_GT(us.moves, 0u);
    ASSERT_GT(us.renames, 0u);
    ASSERT_EQ(AppliedOps(*clean), total_applied);
  }
  ASSERT_GT(total_appends, total_applied);

  const bool exhaustive =
      std::getenv("NATIX_CRASH_MATRIX_EXHAUSTIVE") != nullptr;
  const uint64_t stride =
      exhaustive ? 1 : std::max<uint64_t>(1, total_appends / 16);

  NatixStore oracle = MakeStore();
  const size_t size_floor = oracle.live_node_count();
  Rng oracle_rng(kWorkloadSeed);
  uint64_t oracle_done = 0;
  int recovered_trials = 0;
  int never_durable_trials = 0;

  for (uint64_t fault_at = 0; fault_at < total_appends; fault_at += stride) {
    for (const FaultMode mode :
         {FaultMode::kFailStop, FaultMode::kShortWrite,
          FaultMode::kTornWrite}) {
      const std::string context =
          "mixed fault at append " + std::to_string(fault_at) + " mode " +
          std::to_string(static_cast<int>(mode));
      const std::shared_ptr<MemoryFileBackend::Bytes> disk =
          RunMixedWorkloadUntilCrash(fault_at, mode);
      Result<NatixStore> recovered =
          NatixStore::Recover(std::make_unique<MemoryFileBackend>(disk));
      if (!recovered.ok()) {
        // Only legitimate while the initial checkpoint had not sealed;
        // once the op stream starts, every prefix must recover. Crashes
        // past the midpoint have also survived a mid-stream checkpoint,
        // so this bound covers checkpoint recovery too.
        ASSERT_LT(fault_at, total_appends - total_applied)
            << context << ": " << recovered.status().ToString();
        ++never_durable_trials;
        continue;
      }
      ++recovered_trials;
      const uint64_t m = AppliedOps(*recovered);
      ASSERT_LE(m, total_applied) << context;
      AdvanceMixedOracle(&oracle, &oracle_rng, size_floor, &oracle_done, m);
      ASSERT_EQ(oracle_done, m) << context;
      ExpectEquivalent(*recovered, oracle, context);
    }
  }
  EXPECT_GT(recovered_trials, 0);
  EXPECT_LT(never_durable_trials, recovered_trials);
}

TEST(DurableStoreTest, MixedStreamRecoversMidStreamCheckpoint) {
  // Crash shortly after the midpoint: the surviving log holds at least
  // one full mid-stream checkpoint whose partitioner state (merges
  // included) recovery must restore before replaying the tail.
  uint64_t total_appends = 0;
  RunMixedWorkloadUntilCrash(~0ull, FaultMode::kFailStop, &total_appends);
  const uint64_t fault_at = total_appends * 3 / 4;
  const std::shared_ptr<MemoryFileBackend::Bytes> disk =
      RunMixedWorkloadUntilCrash(fault_at, FaultMode::kTornWrite);
  Result<NatixStore> recovered =
      NatixStore::Recover(std::make_unique<MemoryFileBackend>(disk));
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();

  NatixStore oracle = MakeStore();
  const size_t size_floor = oracle.live_node_count();
  Rng oracle_rng(kWorkloadSeed);
  uint64_t oracle_done = 0;
  AdvanceMixedOracle(&oracle, &oracle_rng, size_floor, &oracle_done,
                     AppliedOps(*recovered));
  ExpectEquivalent(*recovered, oracle, "post-midpoint mixed crash");

  // The recovered store keeps mutating and survives a second crash.
  Rng cont_a(4242), cont_b(4242);
  uint64_t extra = 0;
  for (int i = 0; i < 100; ++i) {
    const MixedOpOutcome a = ScriptedMixedOp(&*recovered, &cont_a, size_floor);
    const MixedOpOutcome b = ScriptedMixedOp(&oracle, &cont_b, size_floor);
    ASSERT_NE(a, MixedOpOutcome::kFailed) << "continue " << i;
    ASSERT_EQ(a == MixedOpOutcome::kApplied, b == MixedOpOutcome::kApplied);
    if (a == MixedOpOutcome::kApplied) ++extra;
  }
  ASSERT_TRUE(recovered->Checkpoint().ok());
  const uint64_t before_second = AppliedOps(*recovered);
  recovered = Status::Internal("crashed");

  Result<NatixStore> again =
      NatixStore::Recover(std::make_unique<MemoryFileBackend>(disk));
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(AppliedOps(*again), before_second);
  ASSERT_GT(extra, 0u);
  ExpectEquivalent(*again, oracle, "second mixed recovery");
}

}  // namespace
}  // namespace natix
