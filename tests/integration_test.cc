// End-to-end pipeline tests: generator -> XML parser -> importer ->
// partitioning algorithm -> storage engine -> query evaluator, across the
// whole corpus and algorithm registry. Verifies global invariants that
// tie the modules together:
//   * every algorithm yields a feasible partitioning whose interval
//     weights sum to the total document weight (nothing lost or counted
//     twice),
//   * the optimal DHW never loses to any other algorithm,
//   * queries return identical results regardless of the layout, and
//     equal to the storage-free reference evaluator.
#include <gtest/gtest.h>

#include "core/algorithm.h"
#include "datagen/generator.h"
#include "query/evaluator.h"
#include "query/parser.h"
#include "query/reference_evaluator.h"
#include "storage/store.h"
#include "tests/test_util.h"
#include "xml/importer.h"

namespace natix {
namespace {

constexpr TotalWeight kLimit = 128;

class PipelineTest : public ::testing::TestWithParam<const char*> {
 protected:
  void SetUp() override {
    WeightModel model;
    model.max_node_slots = kLimit;
    const Result<std::string> xml = GenerateDocument(GetParam(), 99, 0.03);
    ASSERT_TRUE(xml.ok());
    Result<ImportedDocument> imp = ImportXml(*xml, model);
    ASSERT_TRUE(imp.ok()) << imp.status().ToString();
    doc_ = std::make_unique<ImportedDocument>(std::move(imp).value());
  }

  std::unique_ptr<ImportedDocument> doc_;
};

TEST_P(PipelineTest, AllAlgorithmsFeasibleAndWeightConserving) {
  const Tree& tree = doc_->tree;
  size_t best = static_cast<size_t>(-1);
  std::string best_name;
  size_t dhw_cardinality = 0;
  for (const std::string_view algo : AlgorithmNames()) {
    if (algo == "FDW") continue;
    const Result<Partitioning> p = PartitionWith(algo, tree, kLimit);
    ASSERT_TRUE(p.ok()) << algo << ": " << p.status().ToString();
    const PartitionAnalysis a =
        testing_util::MustBeFeasible(tree, *p, kLimit, std::string(algo));
    // Weight conservation: the partitions tile the document.
    TotalWeight sum = 0;
    for (const TotalWeight w : a.interval_weights) sum += w;
    EXPECT_EQ(sum, tree.TotalTreeWeight()) << algo;
    if (a.cardinality < best) {
      best = a.cardinality;
      best_name = algo;
    }
    if (algo == "DHW") dhw_cardinality = a.cardinality;
  }
  EXPECT_EQ(best, dhw_cardinality)
      << "DHW (optimal) was beaten by " << best_name;
}

TEST_P(PipelineTest, QueriesAgreeAcrossLayouts) {
  const Tree& tree = doc_->tree;
  // Generic structural queries that hit every corpus document.
  const char* queries[] = {
      "/*",
      "//*[node()]",
      "/descendant-or-self::node()",
      "/*/*/following-sibling::*",
  };
  for (const char* q : queries) {
    const Result<PathExpr> path = ParseXPath(q);
    ASSERT_TRUE(path.ok()) << q;
    const Result<std::vector<NodeId>> reference =
        EvaluateOnTree(tree, *path);
    ASSERT_TRUE(reference.ok()) << q;
    for (const std::string_view algo : {"EKM", "KM", "DFS", "BFS"}) {
      const Result<Partitioning> p = PartitionWith(algo, tree, kLimit);
      ASSERT_TRUE(p.ok());
      const Result<NatixStore> store = NatixStore::Build(doc_->Clone(), *p, kLimit);
      ASSERT_TRUE(store.ok()) << algo;
      AccessStats stats;
      StoreQueryEvaluator eval(&*store, &stats);
      const Result<std::vector<NodeId>> result = eval.Evaluate(*path);
      ASSERT_TRUE(result.ok()) << algo << " " << q;
      EXPECT_EQ(*result, *reference) << algo << " " << q;
    }
  }
}

TEST_P(PipelineTest, FewerPartitionsFewerScanCrossings) {
  // The monotone mechanism behind the paper's thesis, checked per
  // document: the optimal layout never crosses more than KM during a
  // full-document navigational scan.
  const Tree& tree = doc_->tree;
  const Result<PathExpr> scan = ParseXPath("/descendant-or-self::node()");
  ASSERT_TRUE(scan.ok());
  auto crossings = [&](std::string_view algo) {
    const Result<Partitioning> p = PartitionWith(algo, tree, kLimit);
    EXPECT_TRUE(p.ok());
    const Result<NatixStore> store = NatixStore::Build(doc_->Clone(), *p, kLimit);
    EXPECT_TRUE(store.ok());
    AccessStats stats;
    StoreQueryEvaluator eval(&*store, &stats);
    EXPECT_TRUE(eval.Evaluate(*scan).ok());
    return stats.record_crossings;
  };
  const uint64_t dhw = crossings("DHW");
  const uint64_t ekm = crossings("EKM");
  const uint64_t km = crossings("KM");
  EXPECT_LE(dhw, km);
  EXPECT_LE(ekm, km);
}

INSTANTIATE_TEST_SUITE_P(Corpus, PipelineTest,
                         ::testing::Values("sigmod", "mondial", "partsupp",
                                           "uwm", "orders", "xmark"),
                         [](const ::testing::TestParamInfo<const char*>& i) {
                           return std::string(i.param);
                         });

}  // namespace
}  // namespace natix
