// Randomized chaos harness for the durable store's failure machinery.
//
// Every trial drives one store/oracle pair through a seeded mixed
// CRUD + query + checkpoint + snapshot stream while a fault plan --
// also drawn from the trial seed -- arms crash, torn-write, transient
// EIO, fsync-kill, bit-rot and disk-full faults at randomized backend
// call indices. Four invariants are asserted per trial:
//
//   1. no acknowledged-durable op is ever lost: recovery lands on an
//      op-count k no smaller than the last successful sync barrier;
//   2. reads are correct-or-clean-error: while the store and oracle are
//      in lockstep every probed query agrees, and every failed mutation
//      returns a classified Status (never garbage, never a crash);
//   3. a Degraded store keeps serving: full query equivalence against
//      the oracle, snapshot-consistent reads, and mutations refused
//      with FailedPrecondition;
//   4. recovery converges: the surviving bytes (power-loss image or
//      full disk) recover to an exact op-prefix of the oracle stream
//      and the result passes the store-level fsck cross-validation.
//
// Trials are reproducible from their index alone. Short mode runs a
// bounded sweep; NATIX_CHAOS_EXHAUSTIVE=1 widens it to >= 500 trials
// and NATIX_CHAOS_TRIALS=<n> pins an exact count.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/crc32.h"
#include "common/rng.h"
#include "core/heuristics.h"
#include "datagen/generator.h"
#include "query/evaluator.h"
#include "query/parser.h"
#include "query/xpathmark.h"
#include "storage/fault_injector.h"
#include "storage/file_backend.h"
#include "storage/fsck.h"
#include "storage/store.h"
#include "storage/wal.h"
#include "xml/importer.h"

namespace natix {
namespace {

constexpr TotalWeight kChaosLimit = 64;
constexpr uint64_t kChaosSeedBase = 0x5eedc4a05ull;
constexpr uint64_t kChaosGolden = 0x9e3779b97f4a7c15ull;
constexpr uint64_t kOpSalt = 0xa5a5a5a5a5a5a5a5ull;
constexpr uint64_t kProbeSalt = 0x0ddba11ull;

// ------------------------------------------------ trial ingredients -----

/// The base document and partitioning are trial-invariant; importing
/// them once keeps a 500-trial sweep affordable.
const ImportedDocument& ChaosBaseDoc() {
  static const ImportedDocument* doc = [] {
    WeightModel model;
    model.max_node_slots = static_cast<uint32_t>(kChaosLimit);
    Result<ImportedDocument> imp = ImportXml(GenerateXmark(5, 0.003), model);
    EXPECT_TRUE(imp.ok()) << imp.status().ToString();
    return new ImportedDocument(std::move(imp).value());
  }();
  return *doc;
}

const Partitioning& ChaosBasePartitioning() {
  static const Partitioning* part = [] {
    Result<Partitioning> p = EkmPartition(ChaosBaseDoc().tree, kChaosLimit);
    EXPECT_TRUE(p.ok()) << p.status().ToString();
    return new Partitioning(std::move(p).value());
  }();
  return *part;
}

NatixStore MakeChaosStore() {
  Result<NatixStore> store = NatixStore::Build(
      ChaosBaseDoc().Clone(), ChaosBasePartitioning(), kChaosLimit);
  EXPECT_TRUE(store.ok()) << store.status().ToString();
  return std::move(store).value();
}

// ------------------------------------------------- scripted op mix ------

enum class ChaosOutcome { kApplied, kSkipped, kFailed };

struct ChaosOpResult {
  ChaosOutcome outcome = ChaosOutcome::kSkipped;
  Status status;
};

NodeId ChaosPickLive(const NatixStore& store, Rng* rng) {
  const size_t n = store.tree().size();
  for (int tries = 0; tries < 256; ++tries) {
    const auto v = static_cast<NodeId>(rng->NextBounded(n));
    if (store.IsLiveNode(v)) return v;
  }
  return 0;
}

bool ChaosSubtreeCapped(const Tree& t, NodeId v, size_t cap) {
  std::vector<NodeId> stack = {v};
  size_t n = 0;
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    if (++n > cap) return false;
    for (NodeId c = t.FirstChild(u); c != kInvalidNode; c = t.NextSibling(c)) {
      stack.push_back(c);
    }
  }
  return true;
}

/// One scripted mixed op (~40% insert, 30% delete-subtree, 20% move,
/// 10% rename), prefix-deterministic exactly like the recovery tests'
/// generator: every draw depends only on the shared Rng and the current
/// tree state, and skipped picks consume identical draws on every
/// store. The WAL-layer status is returned verbatim so the harness can
/// classify failures instead of asserting success.
ChaosOpResult ChaosOp(NatixStore* store, Rng* rng, size_t size_floor) {
  static constexpr const char* kLabels[] = {"item", "note", "entry", "x"};
  const Tree& t = store->tree();
  uint64_t roll = rng->NextBounded(100);
  if (roll >= 40 && roll < 70 && store->live_node_count() < size_floor) {
    roll = 0;
  }
  if (roll < 40) {
    const NodeId parent = ChaosPickLive(*store, rng);
    NodeId before = kInvalidNode;
    if (t.ChildCount(parent) > 0 && rng->NextBool(0.4)) {
      const std::vector<NodeId> kids = t.Children(parent);
      before = kids[rng->NextBounded(kids.size())];
    }
    const bool text = rng->NextBool(0.5);
    std::string content;
    if (text) {
      content.assign(1 + rng->NextBounded(40),
                     static_cast<char>('a' + rng->NextBounded(26)));
    }
    const Result<NodeId> id = store->InsertBefore(
        parent, before, text ? "" : kLabels[rng->NextBounded(4)],
        text ? NodeKind::kText : NodeKind::kElement, content);
    return {id.ok() ? ChaosOutcome::kApplied : ChaosOutcome::kFailed,
            id.ok() ? Status::OK() : id.status()};
  }
  if (roll < 70) {
    const NodeId v = ChaosPickLive(*store, rng);
    if (v == 0 || !ChaosSubtreeCapped(t, v, 16)) {
      return {ChaosOutcome::kSkipped, Status::OK()};
    }
    const Result<std::vector<NodeId>> gone = store->DeleteSubtree(v);
    return {gone.ok() ? ChaosOutcome::kApplied : ChaosOutcome::kFailed,
            gone.ok() ? Status::OK() : gone.status()};
  }
  if (roll < 90) {
    const NodeId v = ChaosPickLive(*store, rng);
    const NodeId parent = ChaosPickLive(*store, rng);
    if (v == 0) return {ChaosOutcome::kSkipped, Status::OK()};
    for (NodeId a = parent; a != kInvalidNode; a = t.Parent(a)) {
      if (a == v) return {ChaosOutcome::kSkipped, Status::OK()};
    }
    NodeId before = kInvalidNode;
    if (t.ChildCount(parent) > 0 && rng->NextBool(0.5)) {
      const std::vector<NodeId> kids = t.Children(parent);
      before = kids[rng->NextBounded(kids.size())];
      if (before == v) before = kInvalidNode;
    }
    const Status moved = store->MoveSubtree(v, parent, before);
    return {moved.ok() ? ChaosOutcome::kApplied : ChaosOutcome::kFailed,
            moved};
  }
  const Status renamed = store->Rename(ChaosPickLive(*store, rng),
                                       kLabels[rng->NextBounded(4)]);
  return {renamed.ok() ? ChaosOutcome::kApplied : ChaosOutcome::kFailed,
          renamed};
}

uint64_t AppliedOps(const NatixStore& store) {
  const UpdateStats us = store.update_stats();
  return us.inserts + us.deletes + us.moves + us.renames;
}

/// The failure taxonomy: every surfaced error must be one of these, so a
/// caller can decide retry (Unavailable), backpressure
/// (ResourceExhausted), stop-mutating (FailedPrecondition) or page the
/// operator (Internal). Anything else is a classification bug.
bool IsCleanFailure(const Status& s) {
  switch (s.code()) {
    case StatusCode::kFailedPrecondition:
    case StatusCode::kResourceExhausted:
    case StatusCode::kUnavailable:
    case StatusCode::kInternal:
      return true;
    default:
      return false;
  }
}

// ---------------------------------------------------- equivalence -------

/// Full-state oracle check, structurally identical to the recovery
/// tests' ExpectEquivalent: exact tree/content equality (tombstones
/// included), a feasible partitioning, and XPathMark query agreement.
void ExpectStoresEquivalent(const NatixStore& got, const NatixStore& want,
                            const std::string& context) {
  const Tree& gt = got.tree();
  const Tree& wt = want.tree();
  ASSERT_EQ(gt.size(), wt.size()) << context;
  for (NodeId v = 0; v < gt.size(); ++v) {
    ASSERT_EQ(gt.Parent(v), wt.Parent(v)) << context << " node " << v;
    ASSERT_EQ(gt.FirstChild(v), wt.FirstChild(v)) << context << " node " << v;
    ASSERT_EQ(gt.NextSibling(v), wt.NextSibling(v))
        << context << " node " << v;
    ASSERT_EQ(gt.WeightOf(v), wt.WeightOf(v)) << context << " node " << v;
    ASSERT_EQ(gt.KindOf(v), wt.KindOf(v)) << context << " node " << v;
    ASSERT_EQ(gt.LabelOf(v), wt.LabelOf(v)) << context << " node " << v;
    ASSERT_EQ(got.document().ContentOf(v), want.document().ContentOf(v))
        << context << " node " << v;
  }
  if (got.partitioner() != nullptr) {
    ASSERT_TRUE(got.partitioner()->Validate().ok()) << context;
  }
  AccessStats gstats, wstats;
  StoreQueryEvaluator geval(&got, &gstats);
  StoreQueryEvaluator weval(&want, &wstats);
  for (const XPathMarkQuery& q : XPathMarkQueries()) {
    const Result<PathExpr> path = ParseXPath(q.text);
    ASSERT_TRUE(path.ok()) << q.id;
    const Result<std::vector<NodeId>> g = geval.Evaluate(*path);
    const Result<std::vector<NodeId>> w = weval.Evaluate(*path);
    ASSERT_TRUE(g.ok() && w.ok()) << context << " " << q.id;
    ASSERT_EQ(*g, *w) << context << " " << q.id;
  }
}

/// One random query probed against both stores (invariant 2 while the
/// pair is in lockstep).
void ExpectOneQueryAgrees(const NatixStore& a, const NatixStore& b,
                          Rng* query_rng, const std::string& context) {
  const auto& queries = XPathMarkQueries();
  const XPathMarkQuery& q = queries[query_rng->NextBounded(queries.size())];
  const Result<PathExpr> path = ParseXPath(q.text);
  ASSERT_TRUE(path.ok()) << q.id;
  AccessStats sa, sb;
  StoreQueryEvaluator ea(&a, &sa);
  StoreQueryEvaluator eb(&b, &sb);
  const Result<std::vector<NodeId>> ra = ea.Evaluate(*path);
  const Result<std::vector<NodeId>> rb = eb.Evaluate(*path);
  ASSERT_TRUE(ra.ok() && rb.ok()) << context << " " << q.id;
  ASSERT_EQ(*ra, *rb) << context << " " << q.id;
}

/// Byte-level document equality for the snapshot probe: the doc the
/// snapshot materializes after more ops (and possibly a demotion) must
/// be identical to the one it materialized at open.
void ExpectSameDocument(const ImportedDocument& got,
                        const ImportedDocument& want,
                        const std::string& context) {
  ASSERT_EQ(got.tree.size(), want.tree.size()) << context;
  for (NodeId v = 0; v < got.tree.size(); ++v) {
    ASSERT_EQ(got.tree.Parent(v), want.tree.Parent(v))
        << context << " node " << v;
    ASSERT_EQ(got.tree.FirstChild(v), want.tree.FirstChild(v))
        << context << " node " << v;
    ASSERT_EQ(got.tree.NextSibling(v), want.tree.NextSibling(v))
        << context << " node " << v;
    ASSERT_EQ(got.tree.KindOf(v), want.tree.KindOf(v))
        << context << " node " << v;
    ASSERT_EQ(got.tree.LabelOf(v), want.tree.LabelOf(v))
        << context << " node " << v;
    ASSERT_EQ(got.ContentOf(v), want.ContentOf(v)) << context << " node "
                                                   << v;
  }
}

// -------------------------------------------------------- the trial -----

struct ChaosTally {
  int trials = 0;
  int demotions = 0;
  int failed_states = 0;
  int rehab_attempts = 0;
  int rehabs = 0;
  int enospc_ops = 0;
  int divergent_trials = 0;
  int degraded_serving_checks = 0;
  int refusals_checked = 0;
  int snapshot_probes = 0;
  int power_loss_recoveries = 0;
  int full_disk_recoveries = 0;
  uint64_t ops_applied = 0;
};

/// Recovers `image`, pins the replay depth k within [k_lo, k_hi]
/// (lower bound waived when armed bit rot may have eaten fsynced
/// entries -- no single-copy system survives silent corruption of its
/// only replica), replays a fresh oracle to exactly k ops and demands
/// full equivalence plus a clean store-level fsck (invariants 1 and 4).
void VerifyRecoveredImage(const std::vector<uint8_t>& image, uint64_t k_lo,
                          uint64_t k_hi, bool waive_lower_bound,
                          uint64_t op_seed, size_t size_floor,
                          const std::string& context) {
  {
    MemoryFileBackend fsck_view(
        std::make_shared<MemoryFileBackend::Bytes>(image));
    const Result<FsckReport> report = FsckLog(&fsck_view);
    ASSERT_TRUE(report.ok()) << context << ": " << report.status().ToString();
    std::string detail;
    if (report->log_structure_errors != 0 || !report->store_recovered) {
      for (const std::string& p : report->problems) detail += p + "\n";
      MemoryFileBackend dump_view(
          std::make_shared<MemoryFileBackend::Bytes>(image));
      Result<WalReader> reader = WalReader::Open(&dump_view);
      if (reader.ok()) {
        detail += "entries:";
        while (true) {
          Result<std::optional<WalEntry>> e = reader->Next();
          if (!e.ok() || !e->has_value()) break;
          detail += " " + std::to_string((*e)->lsn) + ":t" +
                    std::to_string(static_cast<int>((*e)->type));
        }
      }
    }
    EXPECT_EQ(report->log_structure_errors, 0u)
        << context << "\n" << report->Summary() << "\n" << detail;
    EXPECT_TRUE(report->store_recovered)
        << context << "\n" << report->Summary() << "\n" << detail;
  }
  RecoveryInfo info;
  Result<NatixStore> recovered = NatixStore::Recover(
      std::make_unique<MemoryFileBackend>(
          std::make_shared<MemoryFileBackend::Bytes>(image)),
      &info);
  ASSERT_TRUE(recovered.ok()) << context << ": "
                              << recovered.status().ToString();
  const uint64_t k = AppliedOps(*recovered);
  ASSERT_LE(k, k_hi) << context << ": recovery invented ops";
  if (!waive_lower_bound) {
    ASSERT_GE(k, k_lo) << context << ": an acknowledged-durable op was lost";
  }
  NatixStore replay = MakeChaosStore();
  Rng replay_rng(op_seed);
  uint64_t done = 0;
  for (int guard = 0; done < k; ++guard) {
    ASSERT_LT(guard, 100000) << context << ": oracle replay diverged";
    const ChaosOpResult out = ChaosOp(&replay, &replay_rng, size_floor);
    ASSERT_NE(out.outcome, ChaosOutcome::kFailed)
        << context << ": " << out.status.ToString();
    if (out.outcome == ChaosOutcome::kApplied) ++done;
  }
  ExpectStoresEquivalent(*recovered, replay, context);
  FsckReport store_report;
  ASSERT_TRUE(FsckStore(*recovered, &store_report).ok()) << context;
  EXPECT_TRUE(store_report.clean()) << context << "\n"
                                    << store_report.Summary();
}

// NATIX_CHAOS_TRACE=1 narrates every trial event to stderr -- the fault
// plan, each op's outcome, barrier rolls and rehabilitations -- so a
// failing trial can be replayed and read like a script.
bool ChaosTraceEnabled() {
  static const bool on = std::getenv("NATIX_CHAOS_TRACE") != nullptr;
  return on;
}

void ChaosTrace(const std::string& line) {
  if (ChaosTraceEnabled()) fprintf(stderr, "TRACE %s\n", line.c_str());
}

void RunChaosTrial(uint64_t trial, ChaosTally* tally) {
  const uint64_t seed = kChaosSeedBase + trial * kChaosGolden;
  const uint64_t op_seed = seed ^ kOpSalt;
  SCOPED_TRACE("chaos trial " + std::to_string(trial) + " seed " +
               std::to_string(seed));
  ++tally->trials;

  Rng meta(seed);                 // fault plan, policy, probe cadence
  Rng rng_a(op_seed);             // the store's op stream
  Rng rng_b(op_seed);             // the lockstep oracle's op stream
  Rng query_rng(seed ^ kProbeSalt);

  std::optional<NatixStore> store(MakeChaosStore());
  NatixStore oracle = MakeChaosStore();
  const size_t size_floor = store->live_node_count();

  auto mem = std::make_unique<MemoryFileBackend>();
  const std::shared_ptr<MemoryFileBackend::Bytes> disk = mem->disk();
  auto inj = std::make_unique<FaultInjectingBackend>(
      std::move(mem), /*fault_at=*/FaultInjectingBackend::kNoLimit,
      FaultMode::kFailStop, seed);
  FaultInjectingBackend* raw = inj.get();

  SyncPolicy policy;
  switch (meta.NextBounded(3)) {
    case 0:
      policy = SyncPolicy::EveryOp();
      break;
    case 1:
      // A far-future window with a small op threshold: flushes are
      // op-count-driven, so trials do not depend on wall-clock timing.
      policy = SyncPolicy::GroupCommit(
          /*window_us=*/60'000'000,
          /*max_ops=*/1 + static_cast<uint32_t>(meta.NextBounded(8)),
          /*max_bytes=*/1u << 30);
      break;
    default:
      policy = SyncPolicy::OnCheckpoint();
      break;
  }
  // The initial checkpoint runs fault-free (EnableDurability must seal
  // it), so every trial starts from a recoverable log; the fault plan is
  // armed relative to the call counters it left behind.
  ASSERT_TRUE(store->EnableDurability(std::move(inj), policy).ok());
  const uint64_t base_appends = raw->append_count();
  const uint64_t base_syncs = raw->sync_count();
  ChaosTrace("policy=" + std::to_string(static_cast<int>(policy.mode)) +
             " max_ops=" + std::to_string(policy.max_ops) +
             " base_appends=" + std::to_string(base_appends) +
             " base_syncs=" + std::to_string(base_syncs));

  const int ops = 40 + static_cast<int>(meta.NextBounded(80));
  bool flips_armed = false;
  bool capacity_armed = false;
  int cap_at = -1, free_at = -1;
  const int faults = 1 + static_cast<int>(meta.NextBounded(3));
  for (int f = 0; f < faults; ++f) {
    switch (meta.NextBounded(6)) {
      case 0: {
        const FaultMode mode = static_cast<FaultMode>(meta.NextBounded(3));
        const uint64_t at = base_appends + meta.NextBounded(300);
        raw->ArmAppendFault(mode, at);
        ChaosTrace("arm append mode=" +
                   std::to_string(static_cast<int>(mode)) + " at=" +
                   std::to_string(at));
        break;
      }
      case 1: {
        const uint64_t at = base_syncs + meta.NextBounded(30);
        raw->ArmSyncFault(at);
        ChaosTrace("arm sync at=" + std::to_string(at));
        break;
      }
      case 2: {
        const uint64_t at = base_appends + meta.NextBounded(300);
        const uint32_t n = 1 + static_cast<uint32_t>(meta.NextBounded(3));
        raw->ArmTransientAppendFault(at, n);
        ChaosTrace("arm transient-append at=" + std::to_string(at) +
                   " count=" + std::to_string(n));
        break;
      }
      case 3: {
        const ReadFaultMode mode = meta.NextBool(0.5)
                                       ? ReadFaultMode::kTransientEio
                                       : ReadFaultMode::kShortRead;
        const uint64_t at = meta.NextBounded(300);
        const uint32_t n = 1 + static_cast<uint32_t>(meta.NextBounded(2));
        raw->ArmReadFault(mode, at, n);
        ChaosTrace("arm read mode=" +
                   std::to_string(static_cast<int>(mode)) + " at=" +
                   std::to_string(at) + " count=" + std::to_string(n));
        break;
      }
      case 4: {
        const uint64_t at = meta.NextBounded(300);
        raw->ArmReadFault(ReadFaultMode::kBitFlip, at);
        flips_armed = true;
        ChaosTrace("arm bitflip at=" + std::to_string(at));
        break;
      }
      default:
        cap_at = static_cast<int>(meta.NextBounded(ops));
        free_at = cap_at + 1 + static_cast<int>(meta.NextBounded(ops));
        ChaosTrace("arm capacity cap_at=" + std::to_string(cap_at) +
                   " free_at=" + std::to_string(free_at));
        break;
    }
  }

  uint64_t applied = 0;   // ops applied to both store and oracle
  uint64_t min_k = 0;     // applied count at the last durable barrier
  bool divergent = false; // one mutation failed after its memory apply
  struct Probe {
    std::optional<StoreSnapshot> snap;
    ImportedDocument at_open;
  };
  std::optional<Probe> probe;

  for (int i = 0; i < ops; ++i) {
    if (i == cap_at) {
      if (const Result<uint64_t> size = raw->Size(); size.ok()) {
        raw->ArmCapacityLimit(*size + 128 + meta.NextBounded(4096));
        capacity_armed = true;
      }
    }
    if (i == free_at && capacity_armed) {
      raw->ArmCapacityLimit(FaultInjectingBackend::kNoLimit);
      capacity_armed = false;
    }

    if (store->health() == StoreHealth::kHealthy && !divergent) {
      const ChaosOpResult r = ChaosOp(&*store, &rng_a, size_floor);
      ChaosTrace("op " + std::to_string(i) + " outcome=" +
                 std::to_string(static_cast<int>(r.outcome)) + " status=" +
                 r.status.ToString() + " health=" +
                 std::to_string(static_cast<int>(store->health())) +
                 " appends=" + std::to_string(raw->append_count()) +
                 " syncs=" + std::to_string(raw->sync_count()));
      const bool enospc_buffered =
          r.outcome == ChaosOutcome::kFailed &&
          r.status.code() == StatusCode::kResourceExhausted &&
          store->health() == StoreHealth::kHealthy;
      if (r.outcome == ChaosOutcome::kSkipped) {
        const ChaosOpResult o = ChaosOp(&oracle, &rng_b, size_floor);
        ASSERT_EQ(o.outcome, ChaosOutcome::kSkipped) << "lockstep broke";
      } else if (r.outcome == ChaosOutcome::kApplied || enospc_buffered) {
        // A disk-full mutation is backpressure, not corruption: the op
        // applied in memory and its entry is buffered for the next
        // flush, so the oracle mirrors it like an acknowledged op.
        const ChaosOpResult o = ChaosOp(&oracle, &rng_b, size_floor);
        ASSERT_EQ(o.outcome, ChaosOutcome::kApplied)
            << "lockstep broke: " << o.status.ToString();
        ++applied;
        if (enospc_buffered) ++tally->enospc_ops;
        if (policy.mode == SyncPolicy::Mode::kSyncEveryOp &&
            r.outcome == ChaosOutcome::kApplied) {
          min_k = applied;  // every-op acks imply durability
        }
      } else {
        // Invariant 2: the failure is classified, and the apply-then-log
        // discipline means at most this one op sits in memory without a
        // log entry -- the lockstep pair diverges by exactly one op.
        ASSERT_TRUE(IsCleanFailure(r.status)) << r.status.ToString();
        EXPECT_NE(store->health(), StoreHealth::kHealthy)
            << "a non-backpressure mutation failure must demote: "
            << r.status.ToString();
        divergent = true;
        ++tally->demotions;
        ++tally->divergent_trials;
      }
    } else if (store->health() != StoreHealth::kHealthy) {
      // Invariant 3, refusal half: mutations bounce with
      // FailedPrecondition and change nothing.
      const size_t nodes_before = store->tree().size();
      const Result<NodeId> refused = store->InsertBefore(
          store->tree().root(), kInvalidNode, "x", NodeKind::kElement, "");
      ASSERT_FALSE(refused.ok());
      EXPECT_EQ(refused.status().code(), StatusCode::kFailedPrecondition)
          << refused.status().ToString();
      EXPECT_EQ(store->tree().size(), nodes_before);
      EXPECT_FALSE(store->health_reason().empty());
      ++tally->refusals_checked;
    }

    const uint64_t roll = meta.NextBounded(100);
    if (store->health() == StoreHealth::kHealthy) {
      if (roll < 12) {
        const Status s = store->SyncWal();
        ChaosTrace("sync i=" + std::to_string(i) + " -> " + s.ToString());
        if (s.ok()) {
          if (!divergent) min_k = applied;
        } else {
          ASSERT_TRUE(IsCleanFailure(s)) << s.ToString();
          if (s.code() != StatusCode::kResourceExhausted) {
            EXPECT_NE(store->health(), StoreHealth::kHealthy);
            ++tally->demotions;
          }
        }
      } else if (roll < 18) {
        const Status s = store->Checkpoint();
        ChaosTrace("checkpoint i=" + std::to_string(i) + " -> " +
                   s.ToString());
        if (s.ok()) {
          if (!divergent) min_k = applied;
        } else {
          ASSERT_TRUE(IsCleanFailure(s)) << s.ToString();
          if (s.code() != StatusCode::kResourceExhausted) {
            EXPECT_NE(store->health(), StoreHealth::kHealthy);
            ++tally->demotions;
          }
        }
      }
    } else if (store->health() == StoreHealth::kDegraded &&
               meta.NextBool(0.25)) {
      // The operator swaps the cable and asks for rehabilitation. A
      // still-dead (or still-full, or bit-rotten) backend keeps the
      // store degraded; success must restore full health.
      ++tally->rehab_attempts;
      if (raw->fired()) raw->Revive();
      if (capacity_armed && meta.NextBool(0.7)) {
        raw->ArmCapacityLimit(FaultInjectingBackend::kNoLimit);
        capacity_armed = false;
      }
      const Status r = store->TryRehabilitate();
      ChaosTrace("rehab i=" + std::to_string(i) + " -> " + r.ToString());
      if (r.ok()) {
        ASSERT_EQ(store->health(), StoreHealth::kHealthy);
        EXPECT_TRUE(store->health_reason().empty());
        ++tally->rehabs;
        // The rehabilitation checkpoint re-persists the whole in-memory
        // state, divergent op included.
        min_k = applied + (divergent ? 1 : 0);
      } else {
        // A probe that reads rotten bytes (an armed bit-flip hitting the
        // header or an entry) surfaces as ParseError -- corruption is a
        // classified failure too, and the store must stay degraded.
        ASSERT_TRUE(IsCleanFailure(r) ||
                    r.code() == StatusCode::kParseError)
            << r.ToString();
        EXPECT_NE(store->health(), StoreHealth::kHealthy);
      }
    }

    // Read probes: lockstep query agreement while the pair is in sync
    // (healthy or degraded -- reads must keep serving), and a snapshot
    // opened mid-stream whose view must never move again.
    if (!divergent && meta.NextBounded(100) < 10) {
      ExpectOneQueryAgrees(*store, oracle, &query_rng,
                           "op " + std::to_string(i));
    }
    if (!probe && meta.NextBounded(100) < 8) {
      Probe p;
      p.snap.emplace(store->OpenSnapshot());
      Result<ImportedDocument> doc = p.snap->MaterializeDocument();
      ASSERT_TRUE(doc.ok()) << doc.status().ToString();
      p.at_open = std::move(doc).value();
      probe = std::move(p);
      ++tally->snapshot_probes;
    }
  }

  if (store->health() == StoreHealth::kFailed) ++tally->failed_states;

  // Snapshot probe, second half: after every later op, demotion and
  // rehabilitation, the pinned version must read back unchanged.
  if (probe) {
    const Result<ImportedDocument> again = probe->snap->MaterializeDocument();
    ASSERT_TRUE(again.ok()) << again.status().ToString();
    ExpectSameDocument(*again, probe->at_open, "snapshot probe");
    probe.reset();
  }

  // Closing barrier for healthy survivors: everything acknowledged gets
  // synced, making the final recovery exact.
  bool final_synced = false;
  if (store->health() == StoreHealth::kHealthy) {
    if (capacity_armed) {
      raw->ArmCapacityLimit(FaultInjectingBackend::kNoLimit);
      capacity_armed = false;
    }
    const Status s = store->SyncWal();
    if (s.ok()) {
      final_synced = true;
      min_k = applied + (divergent ? 1 : 0);
    } else {
      ASSERT_TRUE(IsCleanFailure(s)) << s.ToString();
    }
  }

  // Invariant 3, serving half: a degraded store answers every query
  // exactly like the oracle (the WAL is dead, reads are not).
  if (store->health() != StoreHealth::kHealthy && !divergent) {
    ExpectStoresEquivalent(*store, oracle, "degraded serving");
    ++tally->degraded_serving_checks;
  }

  const uint64_t k_hi = applied + (divergent ? 1 : 0);
  tally->ops_applied += applied;

  // Pull the plug: the power-loss image is what a real restart sees.
  // The full surviving bytes (un-fsynced suffix included) are a second,
  // weaker-ordered recovery source; both must converge.
  Result<std::vector<uint8_t>> power_image = raw->DurableImage();
  ASSERT_TRUE(power_image.ok()) << power_image.status().ToString();
  store.reset();  // crash: joins the flusher, drops the injector
  const std::vector<uint8_t> full_bytes(*disk);

  VerifyRecoveredImage(*power_image, min_k, k_hi, flips_armed, op_seed,
                       size_floor, "power-loss recovery");
  ++tally->power_loss_recoveries;
  if (full_bytes != *power_image &&
      !::testing::Test::HasFatalFailure()) {
    VerifyRecoveredImage(full_bytes, min_k, k_hi, flips_armed, op_seed,
                         size_floor, "full-disk recovery");
    ++tally->full_disk_recoveries;
  }
  if (final_synced) {
    // Nothing was in flight: recovery of the full bytes is exact.
    // (Checked via the bounds: min_k == k_hi pins k.)
    ASSERT_EQ(min_k, k_hi);
  }
}

TEST(StoreChaosTest, RandomizedFaultTrialsPreserveInvariants) {
  int trials = 60;
  if (const char* n = std::getenv("NATIX_CHAOS_TRIALS")) {
    trials = std::atoi(n);
  } else if (std::getenv("NATIX_CHAOS_EXHAUSTIVE") != nullptr) {
    trials = 500;
  }
  int offset = 0;
  if (const char* n = std::getenv("NATIX_CHAOS_OFFSET")) {
    offset = std::atoi(n);
  }
  ChaosTally tally;
  for (int t = offset; t < offset + trials; ++t) {
    RunChaosTrial(static_cast<uint64_t>(t), &tally);
    ASSERT_FALSE(::testing::Test::HasFailure())
        << "chaos trial " << t << " violated an invariant";
  }
  std::printf(
      "CHAOS {\"trials\": %d, \"ops_applied\": %llu, \"demotions\": %d, "
      "\"failed_states\": %d, \"rehab_attempts\": %d, \"rehabs\": %d, "
      "\"enospc_ops\": %d, \"divergent_trials\": %d, "
      "\"degraded_serving_checks\": %d, \"refusals_checked\": %d, "
      "\"snapshot_probes\": %d, \"power_loss_recoveries\": %d, "
      "\"full_disk_recoveries\": %d}\n",
      tally.trials, static_cast<unsigned long long>(tally.ops_applied),
      tally.demotions, tally.failed_states, tally.rehab_attempts,
      tally.rehabs, tally.enospc_ops, tally.divergent_trials,
      tally.degraded_serving_checks, tally.refusals_checked,
      tally.snapshot_probes, tally.power_loss_recoveries,
      tally.full_disk_recoveries);
  // The sweep must actually exercise the machine, not dodge it: faults
  // fired, stores demoted, rehabilitations succeeded, degraded stores
  // served, and both recovery sources converged. The rarer arms
  // (degraded serving after a mid-stream demotion, the ENOSPC cliff)
  // are only guaranteed to appear in a full default sweep, so a
  // trimmed NATIX_CHAOS_TRIALS debug run skips the coverage tally --
  // the per-trial invariants above still hold unconditionally.
  EXPECT_EQ(tally.power_loss_recoveries, tally.trials);
  if (trials >= 60 && offset == 0) {
    EXPECT_GT(tally.demotions, 0);
    EXPECT_GT(tally.rehab_attempts, 0);
    EXPECT_GT(tally.degraded_serving_checks, 0);
    EXPECT_GT(tally.snapshot_probes, 0);
    EXPECT_GT(tally.full_disk_recoveries, 0);
  }
}

}  // namespace
}  // namespace natix
