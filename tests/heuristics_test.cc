#include "core/heuristics.h"

#include <gtest/gtest.h>

#include "core/exact_algorithms.h"
#include "tests/test_util.h"

namespace natix {
namespace {

using testing_util::Fig6Tree;
using testing_util::Fig9Tree;
using testing_util::MustBeFeasible;
using testing_util::MustParse;

// ---------------------------------------------------------------- KM ----

TEST(KmTest, ProducesOnlySingleNodeIntervals) {
  Rng rng(5);
  for (int iter = 0; iter < 20; ++iter) {
    const Tree t = testing_util::RandomTree(rng, 40, 5);
    const TotalWeight k = t.MaxNodeWeight() + 6;
    const Result<Partitioning> p = KmPartition(t, k);
    ASSERT_TRUE(p.ok());
    MustBeFeasible(t, *p, k);
    for (const SiblingInterval& iv : *p) EXPECT_EQ(iv.first, iv.last);
  }
}

TEST(KmTest, CutsHeaviestChildFirst) {
  // Root 1 + children {5, 2}, K = 6: cutting the 5-subtree suffices.
  const Tree t = MustParse("a:1(b:5 c:2)");
  const Result<Partitioning> p = KmPartition(t, 6);
  ASSERT_TRUE(p.ok());
  const PartitionAnalysis a = MustBeFeasible(t, *p, 6);
  EXPECT_EQ(a.cardinality, 2u);
  EXPECT_EQ(a.root_weight, 3u);  // a + c
}

TEST(KmTest, NeighborsNotMerged) {
  // Two sibling subtrees of weight 2 with K = 5: an optimal sibling
  // partitioning merges them into one interval, KM cannot (Sec. 4.3.3).
  const Tree t = MustParse("a:4(b:2 c:2)");
  const Result<Partitioning> km = KmPartition(t, 5);
  const Result<Partitioning> dhw = DhwPartition(t, 5);
  ASSERT_TRUE(km.ok() && dhw.ok());
  EXPECT_EQ(MustBeFeasible(t, *km, 5).cardinality, 3u);
  EXPECT_EQ(MustBeFeasible(t, *dhw, 5).cardinality, 2u);
}

// --------------------------------------------------------------- EKM ----

TEST(EkmTest, SolvesFig6Optimally) {
  // Sec. 4.3.4: on the Fig. 6/8 tree EKM finds the optimal 3 partitions.
  const Tree t = Fig6Tree();
  const Result<Partitioning> p = EkmPartition(t, 5);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(MustBeFeasible(t, *p, 5).cardinality, 3u);
}

TEST(EkmTest, FailsOnFig9) {
  // Sec. 4.3.4, Fig. 9: EKM produces 3 partitions where 2 are possible.
  const Tree t = Fig9Tree();
  const Result<Partitioning> p = EkmPartition(t, 5);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(MustBeFeasible(t, *p, 5).cardinality, 3u);
}

TEST(EkmTest, MergesSiblingRuns) {
  // Root too heavy to keep any child; 6 unit children pack into intervals
  // rather than singletons.
  const Tree t = MustParse("a:5(:1 :1 :1 :1 :1 :1)");
  const Result<Partitioning> p = EkmPartition(t, 5);
  ASSERT_TRUE(p.ok());
  const PartitionAnalysis a = MustBeFeasible(t, *p, 5);
  EXPECT_LE(a.cardinality, 3u);  // (t,t) + at most 2 sibling intervals
}

TEST(EkmTest, FeasibleOnRandomTrees) {
  Rng rng(77);
  for (int iter = 0; iter < 60; ++iter) {
    const Tree t = testing_util::RandomTree(rng, 2 + rng.NextBounded(80), 7);
    const TotalWeight k = t.MaxNodeWeight() + rng.NextBounded(15);
    const Result<Partitioning> p = EkmPartition(t, k);
    ASSERT_TRUE(p.ok()) << TreeToSpec(t) << " K=" << k;
    MustBeFeasible(t, *p, k, TreeToSpec(t));
  }
}

// ---------------------------------------------------------------- RS ----

TEST(RsTest, PacksRightmostSiblingsFirst) {
  // Root 5 + children {1,1,1,1}, K = 5: residual 9 > 5; RS packs from the
  // right: interval (c1..c4) has weight 4 <= 5 and residual drops to 5.
  const Tree t = MustParse("a:5(:1 :1 :1 :1)");
  const Result<Partitioning> p = RsPartition(t, 5);
  ASSERT_TRUE(p.ok());
  const PartitionAnalysis a = MustBeFeasible(t, *p, 5);
  EXPECT_EQ(a.cardinality, 2u);
  EXPECT_EQ(a.root_weight, 5u);
}

TEST(RsTest, StopsCuttingOnceSubtreeFits) {
  // K = 4: residual 5 > 4; cutting (c2,c2) brings it to 3 and RS stops.
  const Tree t = MustParse("a:1(:2 :2)");
  const Result<Partitioning> p = RsPartition(t, 4);
  ASSERT_TRUE(p.ok());
  const PartitionAnalysis a = MustBeFeasible(t, *p, 4);
  EXPECT_EQ(a.cardinality, 2u);
  EXPECT_EQ(a.root_weight, 3u);
}

TEST(RsTest, FeasibleOnRandomTrees) {
  Rng rng(88);
  for (int iter = 0; iter < 60; ++iter) {
    const Tree t = testing_util::RandomTree(rng, 2 + rng.NextBounded(80), 7);
    const TotalWeight k = t.MaxNodeWeight() + rng.NextBounded(15);
    const Result<Partitioning> p = RsPartition(t, k);
    ASSERT_TRUE(p.ok()) << TreeToSpec(t) << " K=" << k;
    MustBeFeasible(t, *p, k, TreeToSpec(t));
  }
}

// --------------------------------------------------------------- DFS ----

TEST(DfsTest, KeepsPreorderRunTogether) {
  const Tree t = MustParse("a:1(b:1(c:1) d:1)");
  const Result<Partitioning> p = DfsPartition(t, 4);
  ASSERT_TRUE(p.ok());
  const PartitionAnalysis a = MustBeFeasible(t, *p, 4);
  EXPECT_EQ(a.cardinality, 1u);  // whole tree fits
}

TEST(DfsTest, StartsNewPartitionOnDisconnect) {
  // K = 3: partition 1 = {a, b, c} (weight 3). Next in preorder is d,
  // connected to the current partition only through b... d's parent is a
  // (not in current after a new partition started)? Walk it concretely:
  // a,b,c fill partition 1; d's parent a IS in partition 1 but the weight
  // is full, so d starts partition 2.
  const Tree t = MustParse("a:1(b:1(c:1) d:1)");
  const Result<Partitioning> p = DfsPartition(t, 3);
  ASSERT_TRUE(p.ok());
  const PartitionAnalysis a = MustBeFeasible(t, *p, 3);
  EXPECT_EQ(a.cardinality, 2u);
}

TEST(DfsTest, PrematureDescentHurts) {
  // DFS dives into the first child's subtree and fills the partition with
  // it, while BFS/bottom-up algorithms would keep the shallow siblings
  // together (the "premature decisions" of Sec. 6.2).
  const Tree t = MustParse("a:1(b:1(x:2 y:2) c:1 d:1)");
  const Result<Partitioning> dfs = DfsPartition(t, 4);
  const Result<Partitioning> dhw = DhwPartition(t, 4);
  ASSERT_TRUE(dfs.ok() && dhw.ok());
  EXPECT_GE(MustBeFeasible(t, *dfs, 4).cardinality,
            MustBeFeasible(t, *dhw, 4).cardinality);
}

TEST(DfsTest, FeasibleOnRandomTrees) {
  Rng rng(99);
  for (int iter = 0; iter < 60; ++iter) {
    const Tree t = testing_util::RandomTree(rng, 2 + rng.NextBounded(80), 7);
    const TotalWeight k = t.MaxNodeWeight() + rng.NextBounded(15);
    const Result<Partitioning> p = DfsPartition(t, k);
    ASSERT_TRUE(p.ok()) << TreeToSpec(t) << " K=" << k;
    MustBeFeasible(t, *p, k, TreeToSpec(t));
  }
}

// --------------------------------------------------------------- BFS ----

TEST(BfsTest, JoinsParentPartitionFirst) {
  const Tree t = MustParse("a:1(b:1 c:1)");
  const Result<Partitioning> p = BfsPartition(t, 3);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(MustBeFeasible(t, *p, 3).cardinality, 1u);
}

TEST(BfsTest, FallsBackToSiblingPartition) {
  // Root full after b; c joins b's... b is in the root partition, so c
  // starts its own. With children {2,2} and K = 3: b joins root (1+2=3),
  // c cannot join root nor b's partition (same partition), so new.
  const Tree t = MustParse("a:1(b:2 c:2 d:1)");
  const Result<Partitioning> p = BfsPartition(t, 3);
  ASSERT_TRUE(p.ok());
  const PartitionAnalysis a = MustBeFeasible(t, *p, 3);
  // a+b = 3 full; c new partition; d joins c's partition (2+1=3) as a
  // sibling-interval extension.
  EXPECT_EQ(a.cardinality, 2u);
}

TEST(BfsTest, FeasibleOnRandomTrees) {
  Rng rng(111);
  for (int iter = 0; iter < 60; ++iter) {
    const Tree t = testing_util::RandomTree(rng, 2 + rng.NextBounded(80), 7);
    const TotalWeight k = t.MaxNodeWeight() + rng.NextBounded(15);
    const Result<Partitioning> p = BfsPartition(t, k);
    ASSERT_TRUE(p.ok()) << TreeToSpec(t) << " K=" << k;
    MustBeFeasible(t, *p, k, TreeToSpec(t));
  }
}

// ------------------------------------------------------------ shared ----

TEST(HeuristicsTest, AllRejectOversizedNodes) {
  const Tree t = MustParse("a:2(b:9)");
  EXPECT_FALSE(DfsPartition(t, 5).ok());
  EXPECT_FALSE(BfsPartition(t, 5).ok());
  EXPECT_FALSE(RsPartition(t, 5).ok());
  EXPECT_FALSE(KmPartition(t, 5).ok());
  EXPECT_FALSE(EkmPartition(t, 5).ok());
}

TEST(HeuristicsTest, AllHandleSingleNode) {
  const Tree t = MustParse("a:3");
  for (auto* fn : {&DfsPartition, &BfsPartition, &RsPartition, &KmPartition,
                   &EkmPartition}) {
    const Result<Partitioning> p = (*fn)(t, 3);
    ASSERT_TRUE(p.ok());
    EXPECT_EQ(MustBeFeasible(t, *p, 3).cardinality, 1u);
  }
}

}  // namespace
}  // namespace natix
