#include <gtest/gtest.h>

#include "core/brute_force.h"
#include "core/exact_algorithms.h"
#include "tests/test_util.h"

namespace natix {
namespace {

using testing_util::MustBeFeasible;
using testing_util::MustParse;

TEST(FdwTest, SingleNode) {
  const Tree t = MustParse("a:3");
  const Result<Partitioning> p = FdwPartition(t, 5);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->size(), 1u);  // just (t, t)
  MustBeFeasible(t, *p, 5);
}

TEST(FdwTest, RejectsDeepTree) {
  const Tree t = MustParse("a(b(c))");
  const Result<Partitioning> p = FdwPartition(t, 5);
  EXPECT_FALSE(p.ok());
  EXPECT_EQ(p.status().code(), StatusCode::kInvalidArgument);
}

TEST(FdwTest, RejectsOversizedNode) {
  const Tree t = MustParse("a:9(b:2)");
  EXPECT_FALSE(FdwPartition(t, 5).ok());
}

TEST(FdwTest, RejectsEmptyTree) {
  Tree t;
  EXPECT_FALSE(FdwPartition(t, 5).ok());
}

TEST(FdwTest, AllChildrenFitWithRoot) {
  const Tree t = MustParse("a:1(b:1 c:1 d:1)");
  const Result<Partitioning> p = FdwPartition(t, 10);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->size(), 1u);
  const PartitionAnalysis a = MustBeFeasible(t, *p, 10);
  EXPECT_EQ(a.root_weight, 4u);
}

TEST(FdwTest, PacksSiblingsIntoIntervals) {
  // Root 3 + 6 unit children, K = 4: root takes 1 child; the other 5 pack
  // into ceil(5/4) = 2 intervals => cardinality 3.
  const Tree t = MustParse("a:3(:1 :1 :1 :1 :1 :1)");
  const Result<Partitioning> p = FdwPartition(t, 4);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->size(), 3u);
  MustBeFeasible(t, *p, 4);
}

TEST(FdwTest, MatchesBruteForceOnFixedTrees) {
  const char* specs[] = {
      "a:3(:1 :1 :1 :1 :1 :1)", "a:1(:5 :5 :5)",     "a:2(:1 :4 :1 :4 :1)",
      "a:5(:5 :5 :5 :5)",       "a:1(:2 :3 :2 :3)",  "a:4(:1 :1)",
      "a:1(:1 :2 :3 :4 :5)",    "a:2(:2 :2 :2 :2)",
  };
  for (const char* spec : specs) {
    const Tree t = MustParse(spec);
    for (const TotalWeight k : {5u, 6u, 8u}) {
      const Result<BruteForceResult> bf = BruteForceOptimal(t, k);
      const Result<Partitioning> p = FdwPartition(t, k);
      ASSERT_EQ(bf.ok(), p.ok()) << spec << " K=" << k;
      if (!bf.ok()) continue;
      const PartitionAnalysis a =
          MustBeFeasible(t, *p, k, std::string(spec) + " K=" + std::to_string(k));
      EXPECT_EQ(a.cardinality, bf->min_cardinality) << spec << " K=" << k;
      EXPECT_EQ(a.root_weight, bf->min_root_weight)
          << spec << " K=" << k << " (leanness)";
    }
  }
}

TEST(FdwTest, MatchesBruteForceOnRandomFlatTrees) {
  Rng rng(1234);
  for (int iter = 0; iter < 120; ++iter) {
    const size_t n = 2 + rng.NextBounded(9);
    const Weight max_w = 1 + static_cast<Weight>(rng.NextBounded(6));
    const Tree t = testing_util::RandomFlatTree(rng, n, max_w);
    const TotalWeight k =
        t.MaxNodeWeight() + rng.NextBounded(8);  // always feasible
    const Result<BruteForceResult> bf = BruteForceOptimal(t, k);
    ASSERT_TRUE(bf.ok());
    const Result<Partitioning> p = FdwPartition(t, k);
    ASSERT_TRUE(p.ok()) << TreeToSpec(t) << " K=" << k;
    const PartitionAnalysis a = MustBeFeasible(t, *p, k, TreeToSpec(t));
    EXPECT_EQ(a.cardinality, bf->min_cardinality)
        << TreeToSpec(t) << " K=" << k;
    EXPECT_EQ(a.root_weight, bf->min_root_weight)
        << TreeToSpec(t) << " K=" << k;
  }
}

TEST(FdwTest, StatsAreReported) {
  const Tree t = MustParse("a:1(:1 :1 :1)");
  DpStats stats;
  ASSERT_TRUE(FdwPartition(t, 4, &stats).ok());
  EXPECT_EQ(stats.inner_nodes, 1u);
  EXPECT_GT(stats.rows, 0u);
  EXPECT_GT(stats.cells, 0u);
  EXPECT_GE(stats.full_table_cells, stats.cells);
}

}  // namespace
}  // namespace natix
