#include "core/flat_dp.h"

#include <gtest/gtest.h>

namespace natix {
namespace {

TEST(FlatDpTest, NoChildren) {
  FlatDp dp(3, {}, {}, 10);
  dp.EnsureSeed(3);
  const FlatDp::Entry* e = dp.FinalEntry(3);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->card, 0u);
  EXPECT_EQ(e->rootweight, 3u);
  EXPECT_TRUE(dp.ExtractChain(3).empty());
}

TEST(FlatDpTest, AllChildrenFitInRoot) {
  FlatDp dp(2, {1, 2, 3}, {}, 10);
  dp.EnsureSeed(2);
  const FlatDp::Entry* e = dp.FinalEntry(2);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->card, 0u);
  EXPECT_EQ(e->rootweight, 8u);
  EXPECT_TRUE(dp.ExtractChain(2).empty());
}

TEST(FlatDpTest, TwoSingletonIntervals) {
  // Root 2 + children {4, 4}, K = 5: neither child fits with the root
  // (2+4=6>5) and the pair exceeds K, so two singleton intervals.
  FlatDp dp(2, {4, 4}, {}, 5);
  dp.EnsureSeed(2);
  const FlatDp::Entry* e = dp.FinalEntry(2);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->card, 2u);
  EXPECT_EQ(e->rootweight, 2u);
  const auto chain = dp.ExtractChain(2);
  ASSERT_EQ(chain.size(), 2u);
}

TEST(FlatDpTest, PrefersFewerIntervalsOverLeanRoot) {
  // Root 1 + children {2, 2}, K = 5: everything fits in the root (card 0,
  // rootweight 5) even though cutting both would give a leaner root.
  FlatDp dp(1, {2, 2}, {}, 5);
  dp.EnsureSeed(1);
  const FlatDp::Entry* e = dp.FinalEntry(1);
  EXPECT_EQ(e->card, 0u);
  EXPECT_EQ(e->rootweight, 5u);
}

TEST(FlatDpTest, LeanTieBreak) {
  // Root 3 + children {1, 2}, K = 4: minimal cardinality is 1. Options:
  // join c1 (root 4) + interval (c2,c2), or join c2... 3+2=5>4 infeasible,
  // or interval (c1,c2) weight 3 with root weight 3. The lean choice is
  // the combined interval.
  FlatDp dp(3, {1, 2}, {}, 4);
  dp.EnsureSeed(3);
  const FlatDp::Entry* e = dp.FinalEntry(3);
  EXPECT_EQ(e->card, 1u);
  EXPECT_EQ(e->rootweight, 3u);
  const auto chain = dp.ExtractChain(3);
  ASSERT_EQ(chain.size(), 1u);
  EXPECT_EQ(chain[0].begin, 0u);
  EXPECT_EQ(chain[0].end, 1u);
}

TEST(FlatDpTest, IntervalPacking) {
  // Root 1 + six unit children, K = 3: root takes 2 children, remaining 4
  // pack into 2 intervals of 3... 4 children pack into ceil(4/3)=2
  // intervals. Total card 2.
  FlatDp dp(1, {1, 1, 1, 1, 1, 1}, {}, 3);
  dp.EnsureSeed(1);
  const FlatDp::Entry* e = dp.FinalEntry(1);
  EXPECT_EQ(e->card, 2u);
}

TEST(FlatDpTest, DeltaWAllowsOverweightInterval) {
  // The Fig. 6 situation at the root: children with optimal root weights
  // {1, 5, 1} where the middle child can shed 4 via its nearly optimal
  // partitioning (ΔW = 4). K = 5, root weight 5: no child can join the
  // root; the single interval (c1,c3) weighs 7 but fits once the middle
  // child switches (7 - 4 = 3 <= 5), at the cost of one extra partition.
  FlatDp dp(5, {1, 5, 1}, {0, 4, 0}, 5);
  dp.EnsureSeed(5);
  const FlatDp::Entry* e = dp.FinalEntry(5);
  ASSERT_NE(e, nullptr);
  // card: 1 interval + 1 nearly-optimal switch = 2.
  EXPECT_EQ(e->card, 2u);
  const auto chain = dp.ExtractChain(5);
  ASSERT_EQ(chain.size(), 1u);
  EXPECT_EQ(chain[0].begin, 0u);
  EXPECT_EQ(chain[0].end, 2u);
  ASSERT_EQ(chain[0].nearly.size(), 1u);
  EXPECT_EQ(chain[0].nearly[0], 1u);  // the middle child switched
}

TEST(FlatDpTest, DeltaSwitchesInDescendingOrder) {
  // Root weight 5 (nothing can join), children {2, 5, 1} with
  // ΔW {1, 4, 0}, K = 5. The single interval (c1,c3) weighs 8; the greedy
  // of Lemma 5 must switch the ΔW=4 child first (8-4=4 <= 5), after which
  // the ΔW=1 child need not switch. Total: 1 interval + 1 switch = 2,
  // strictly better than any split (which needs >= 3).
  FlatDp dp(5, {2, 5, 1}, {1, 4, 0}, 5);
  dp.EnsureSeed(5);
  const FlatDp::Entry* e = dp.FinalEntry(5);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->card, 2u);  // 1 interval + 1 switch
  const auto chain = dp.ExtractChain(5);
  ASSERT_EQ(chain.size(), 1u);
  ASSERT_EQ(chain[0].nearly.size(), 1u);
  EXPECT_EQ(chain[0].nearly[0], 1u);  // the ΔW = 4 child, not the ΔW = 1 one
}

TEST(FlatDpTest, MemoizationTouchesFewRows) {
  // 50 children of weight 10, K = 100: reachable s values from seed 1 are
  // 1, 11, 21, ..., 91 -- at most 10 rows, far fewer than 100.
  std::vector<Weight> children(50, 10);
  FlatDp dp(1, std::move(children), {}, 100);
  dp.EnsureSeed(1);
  EXPECT_LE(dp.RowCount(), 10u);
  EXPECT_GT(dp.RowCount(), 0u);
}

TEST(FlatDpTest, IncrementalSeedReusesRows) {
  FlatDp dp(1, {2, 3, 4}, {}, 25);
  dp.EnsureSeed(1);
  const size_t rows_before = dp.RowCount();
  dp.EnsureSeed(1);  // idempotent
  EXPECT_EQ(dp.RowCount(), rows_before);
  dp.EnsureSeed(12);  // new seed extends the table
  EXPECT_GE(dp.RowCount(), rows_before);
  const FlatDp::Entry* e = dp.FinalEntry(12);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->rootweight, 12u + 2 + 3 + 4);
  EXPECT_EQ(e->card, 0u);
}

TEST(FlatDpTest, SeedAboveLimitYieldsNull) {
  FlatDp dp(1, {1}, {}, 5);
  dp.EnsureSeed(9);
  EXPECT_EQ(dp.FinalEntry(9), nullptr);
}

TEST(FlatDpTest, SecondSeedInsideFirstClosure) {
  // Seed 1 with children {2, 3}: closure {1, 3, 4, 6}. Seeding 3 (already
  // a row) must still produce correct results for queries from 3, which
  // need rows (e.g. 3+2=5) outside the first closure.
  FlatDp dp(1, {2, 3}, {}, 10);
  dp.EnsureSeed(1);
  dp.EnsureSeed(3);
  const FlatDp::Entry* e = dp.FinalEntry(3);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->card, 0u);
  EXPECT_EQ(e->rootweight, 8u);  // 3 + 2 + 3, everything joins the root
}

}  // namespace
}  // namespace natix
