// Odds and ends: death-on-misuse contracts, comment/PI handling through
// the whole pipeline, and serializer edge cases.
#include <gtest/gtest.h>

#include "bulkload/streaming.h"
#include "common/status.h"
#include "core/heuristics.h"
#include "xml/document.h"
#include "xml/importer.h"

namespace natix {
namespace {

TEST(StatusDeathTest, CheckOKAbortsOnError) {
  EXPECT_DEATH(Status::Internal("boom").CheckOK(), "boom");
}

TEST(StatusDeathTest, CheckOKPassesOnOk) {
  Status::OK().CheckOK();  // must not abort
}

TEST(CommentPipelineTest, CommentsFlowThroughWhenKept) {
  XmlParseOptions opts;
  opts.keep_comments = true;
  const char* xml = "<a><!--note--><b/><?pi data?></a>";
  const Result<XmlDocument> doc = XmlDocument::Parse(xml, opts);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->size(), 4u);

  WeightModel model;
  const Result<ImportedDocument> imp = ImportDocument(*doc, model);
  ASSERT_TRUE(imp.ok());
  size_t comments = 0;
  size_t pis = 0;
  for (NodeId v = 0; v < imp->tree.size(); ++v) {
    comments += imp->tree.KindOf(v) == NodeKind::kComment;
    pis += imp->tree.KindOf(v) == NodeKind::kProcessingInstruction;
  }
  EXPECT_EQ(comments, 1u);
  EXPECT_EQ(pis, 1u);

  // Comment nodes are weighted like text and partition normally.
  const Result<Partitioning> p = EkmPartition(imp->tree, 8);
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(CheckFeasible(imp->tree, *p, 8).ok());
}

TEST(CommentPipelineTest, BulkloadMatchesImporterWithComments) {
  const char* xml = "<a><!--x--><b>t</b><?p q?></a>";
  XmlParseOptions popts;
  popts.keep_comments = true;
  WeightModel model;
  const Result<ImportedDocument> imp = ImportXml(xml, model, popts);
  ASSERT_TRUE(imp.ok());

  BulkloadOptions opts;
  opts.limit = 100;
  opts.parse_options = popts;
  const Result<BulkloadResult> r = StreamingBulkload(xml, opts);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->tree.size(), imp->tree.size());
  for (NodeId v = 0; v < r->tree.size(); ++v) {
    EXPECT_EQ(r->tree.KindOf(v), imp->tree.KindOf(v)) << v;
    EXPECT_EQ(r->tree.WeightOf(v), imp->tree.WeightOf(v)) << v;
  }
}

TEST(SerializerEdgeTest, CommentAndPiRoundTrip) {
  XmlParseOptions opts;
  opts.keep_comments = true;
  const std::string xml = "<a><!-- keep me --><b/><?target data?></a>";
  const Result<XmlDocument> doc = XmlDocument::Parse(xml, opts);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->Serialize(), xml);
}

TEST(SerializerEdgeTest, EmptyPiData) {
  XmlParseOptions opts;
  opts.keep_comments = true;
  const Result<XmlDocument> doc = XmlDocument::Parse("<a><?x?></a>", opts);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->Serialize(), "<a><?x?></a>");
}

TEST(SerializerEdgeTest, AttributeOnlyElement) {
  const Result<XmlDocument> doc = XmlDocument::Parse("<a k=\"v\"/>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->Serialize(), "<a k=\"v\"/>");
}

}  // namespace
}  // namespace natix
