#include <gtest/gtest.h>

#include <map>
#include <string>

#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/timer.h"

namespace natix {
namespace {

// ------------------------------------------------------------ Status ----

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status s = Status::InvalidArgument("bad K");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad K");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad K");
}

TEST(StatusTest, AllFactories) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, CodeNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kParseError), "ParseError");
}

Result<int> ParsePositive(int v) {
  if (v <= 0) return Status::InvalidArgument("not positive");
  return v;
}

Result<int> Doubled(int v) {
  NATIX_ASSIGN_OR_RETURN(const int x, ParsePositive(v));
  return x * 2;
}

TEST(ResultTest, ValueAndError) {
  Result<int> ok = ParsePositive(21);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 21);
  EXPECT_EQ(ok.value(), 21);

  Result<int> err = ParsePositive(-1);
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, AssignOrReturnMacro) {
  EXPECT_EQ(*Doubled(21), 42);
  EXPECT_FALSE(Doubled(0).ok());
}

TEST(ResultTest, MoveOnlyValues) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = *std::move(r);
  EXPECT_EQ(*v, 7);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("hello");
  EXPECT_EQ(r->size(), 5u);
}

// --------------------------------------------------------------- Rng ----

TEST(RngTest, DeterministicPerSeed) {
  Rng a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) {
    const uint64_t va = a.Next();
    EXPECT_EQ(va, b.Next());
  }
  bool differs = false;
  Rng a2(123);
  for (int i = 0; i < 100; ++i) differs |= a2.Next() != c.Next();
  EXPECT_TRUE(differs);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(7), 7u);
    const int64_t v = rng.NextInRange(-3, 12);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 12);
  }
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(10);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BoundedCoversAllValues) {
  Rng rng(11);
  std::map<uint64_t, int> histogram;
  for (int i = 0; i < 3000; ++i) ++histogram[rng.NextBounded(5)];
  EXPECT_EQ(histogram.size(), 5u);
  for (const auto& [value, count] : histogram) {
    EXPECT_GT(count, 400) << value;  // roughly uniform
  }
}

TEST(RngTest, ZipfIsSkewedTowardLowRanks) {
  Rng rng(12);
  int low = 0;
  for (int i = 0; i < 2000; ++i) {
    if (rng.NextZipf(100, 0.9) < 10) ++low;
  }
  // Far more than the uniform 10% lands in the first decile.
  EXPECT_GT(low, 600);
}

TEST(RngTest, GeometricRespectsCap) {
  Rng rng(13);
  for (int i = 0; i < 200; ++i) {
    EXPECT_LE(rng.NextGeometric(0.9, 5), 5);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(14);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.NextBool(0.0));
    EXPECT_TRUE(rng.NextBool(1.0));
  }
}

// ------------------------------------------------------- string utils ----

TEST(StringUtilTest, Split) {
  const auto parts = SplitString("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
  EXPECT_EQ(SplitString("", ',').size(), 1u);
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(TrimWhitespace("  x y \n"), "x y");
  EXPECT_EQ(TrimWhitespace("xy"), "xy");
  EXPECT_EQ(TrimWhitespace(" \t "), "");
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("foo", "foobar"));
  EXPECT_TRUE(StartsWith("foo", ""));
}

TEST(StringUtilTest, FormatBytes) {
  EXPECT_EQ(FormatBytes(512), "512B");
  EXPECT_EQ(FormatBytes(2048), "2.0KB");
  EXPECT_EQ(FormatBytes(3 * 1024 * 1024), "3.0MB");
  EXPECT_EQ(FormatBytes(5ull * 1024 * 1024 * 1024), "5.00GB");
}

TEST(StringUtilTest, FormatWithCommas) {
  EXPECT_EQ(FormatWithCommas(0), "0");
  EXPECT_EQ(FormatWithCommas(999), "999");
  EXPECT_EQ(FormatWithCommas(1000), "1,000");
  EXPECT_EQ(FormatWithCommas(1234567), "1,234,567");
}

// ------------------------------------------------------------- Timer ----

TEST(TimerTest, MeasuresElapsed) {
  Timer t;
  volatile uint64_t sink = 0;
  for (int i = 0; i < 100000; ++i) sink += static_cast<uint64_t>(i);
  EXPECT_GE(t.ElapsedSeconds(), 0.0);
  EXPECT_GE(t.ElapsedMillis(), 0.0);
  const double before = t.ElapsedSeconds();
  t.Reset();
  EXPECT_LE(t.ElapsedSeconds(), before + 1.0);
}

}  // namespace
}  // namespace natix
