#include "core/algorithm.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace natix {
namespace {

TEST(RegistryTest, AllPaperAlgorithmsRegistered) {
  const std::vector<std::string_view> names = AlgorithmNames();
  ASSERT_EQ(names.size(), 9u);
  // Table 1 column order, FDW appended.
  EXPECT_EQ(names[0], "DHW");
  EXPECT_EQ(names[1], "GHDW");
  EXPECT_EQ(names[2], "EKM");
  EXPECT_EQ(names[3], "RS");
  EXPECT_EQ(names[4], "DFS");
  EXPECT_EQ(names[5], "KM");
  EXPECT_EQ(names[6], "BFS");
  EXPECT_EQ(names[7], "FDW");
  EXPECT_EQ(names[8], "LUKES");
}

TEST(RegistryTest, FindAlgorithm) {
  EXPECT_NE(FindAlgorithm("DHW"), nullptr);
  EXPECT_NE(FindAlgorithm("EKM"), nullptr);
  EXPECT_EQ(FindAlgorithm("nope"), nullptr);
  EXPECT_EQ(FindAlgorithm("dhw"), nullptr);  // names are case-sensitive
}

TEST(RegistryTest, Properties) {
  EXPECT_TRUE(FindAlgorithm("DHW")->IsOptimal());
  EXPECT_TRUE(FindAlgorithm("FDW")->IsOptimal());
  EXPECT_FALSE(FindAlgorithm("GHDW")->IsOptimal());
  EXPECT_FALSE(FindAlgorithm("EKM")->IsOptimal());
  // Sec. 4: DHW and BFS are not main-memory friendly; the bottom-up
  // heuristics and DFS are.
  EXPECT_FALSE(FindAlgorithm("DHW")->IsMainMemoryFriendly());
  EXPECT_FALSE(FindAlgorithm("BFS")->IsMainMemoryFriendly());
  EXPECT_TRUE(FindAlgorithm("EKM")->IsMainMemoryFriendly());
  EXPECT_TRUE(FindAlgorithm("KM")->IsMainMemoryFriendly());
  EXPECT_TRUE(FindAlgorithm("RS")->IsMainMemoryFriendly());
  EXPECT_TRUE(FindAlgorithm("DFS")->IsMainMemoryFriendly());
  EXPECT_TRUE(FindAlgorithm("GHDW")->IsMainMemoryFriendly());
}

TEST(RegistryTest, DescriptionsNonEmpty) {
  for (const std::string_view name : AlgorithmNames()) {
    EXPECT_FALSE(FindAlgorithm(name)->description().empty()) << name;
  }
}

TEST(RegistryTest, PartitionWithRunsEveryAlgorithm) {
  const Tree t = testing_util::Fig3Tree();
  for (const std::string_view name : AlgorithmNames()) {
    if (name == "FDW") continue;  // deep tree
    const Result<Partitioning> p = PartitionWith(name, t, 5);
    ASSERT_TRUE(p.ok()) << name;
    testing_util::MustBeFeasible(t, *p, 5, std::string(name));
  }
}

TEST(RegistryTest, PartitionWithUnknownName) {
  const Tree t = testing_util::Fig3Tree();
  const Result<Partitioning> p = PartitionWith("SCHKOLNICK", t, 5);
  EXPECT_FALSE(p.ok());
  EXPECT_EQ(p.status().code(), StatusCode::kNotFound);
}

TEST(RegistryTest, CheckPartitionable) {
  const Tree t = testing_util::Fig3Tree();
  EXPECT_TRUE(CheckPartitionable(t, 3).ok());
  EXPECT_FALSE(CheckPartitionable(t, 2).ok());  // max node weight 3
  EXPECT_FALSE(CheckPartitionable(t, 0).ok());
  Tree empty;
  EXPECT_FALSE(CheckPartitionable(empty, 5).ok());
}

}  // namespace
}  // namespace natix
