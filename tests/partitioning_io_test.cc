#include "tree/partitioning_io.h"

#include <gtest/gtest.h>

#include "core/exact_algorithms.h"
#include "core/heuristics.h"
#include "datagen/generator.h"
#include "tests/test_util.h"
#include "xml/importer.h"

namespace natix {
namespace {

TEST(PartitioningIoTest, RoundTrip) {
  const Tree t = testing_util::Fig3Tree();
  const Result<Partitioning> p = DhwPartition(t, 5);
  ASSERT_TRUE(p.ok());
  const std::string text = SerializePartitioning(t, *p);
  const Result<Partitioning> back = DeserializePartitioning(t, text);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->size(), p->size());
  for (size_t i = 0; i < p->size(); ++i) {
    EXPECT_EQ((*back)[i], (*p)[i]);
  }
}

TEST(PartitioningIoTest, OfflineReorganizationWorkflow) {
  // The paper's Sec. 6.3 use case: run DHW offline once, reload later.
  WeightModel model;
  model.max_node_slots = 64;
  const std::string xml = GenerateSigmodRecord(2, 0.02);
  const Result<ImportedDocument> offline = ImportXml(xml, model);
  ASSERT_TRUE(offline.ok());
  const Result<Partitioning> optimal = DhwPartition(offline->tree, 64);
  ASSERT_TRUE(optimal.ok());
  const std::string saved = SerializePartitioning(offline->tree, *optimal);

  // "Later": re-import the same document and load the saved result.
  const Result<ImportedDocument> online = ImportXml(xml, model);
  ASSERT_TRUE(online.ok());
  const Result<Partitioning> loaded =
      DeserializePartitioning(online->tree, saved);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(CheckFeasible(online->tree, *loaded, 64).ok());
  EXPECT_EQ(loaded->size(), optimal->size());
}

TEST(PartitioningIoTest, RejectsWrongTree) {
  const Tree t = testing_util::Fig3Tree();
  const Result<Partitioning> p = EkmPartition(t, 5);
  ASSERT_TRUE(p.ok());
  const std::string text = SerializePartitioning(t, *p);
  const Tree other = testing_util::Fig6Tree();
  const Result<Partitioning> loaded = DeserializePartitioning(other, text);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kFailedPrecondition);
}

TEST(PartitioningIoTest, RejectsGarbage) {
  const Tree t = testing_util::Fig3Tree();
  EXPECT_FALSE(DeserializePartitioning(t, "").ok());
  EXPECT_FALSE(DeserializePartitioning(t, "hello world").ok());
  EXPECT_FALSE(
      DeserializePartitioning(t, "natix-partitioning v1\nnope").ok());
  EXPECT_FALSE(DeserializePartitioning(
                   t, "natix-partitioning v1\ntree 8 14\n0 0\n99 99\n")
                   .ok());
  EXPECT_FALSE(DeserializePartitioning(
                   t, "natix-partitioning v1\ntree 8 14\n0 zero\n")
                   .ok());
}

TEST(PartitioningIoTest, RejectsStructurallyInvalidIntervals) {
  const Tree t = testing_util::Fig3Tree();
  // Nodes 3 (d) and 5 (f) have different parents.
  const std::string text = "natix-partitioning v1\ntree 8 14\n0 0\n3 5\n";
  EXPECT_FALSE(DeserializePartitioning(t, text).ok());
}

TEST(PartitioningIoTest, WhitespaceAndBlankLinesTolerated) {
  const Tree t = testing_util::Fig3Tree();
  const std::string text =
      "natix-partitioning v1\n\n  tree 8 14  \n\n 0 0 \n\n";
  const Result<Partitioning> p = DeserializePartitioning(t, text);
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EXPECT_EQ(p->size(), 1u);
}

}  // namespace
}  // namespace natix
