#include "query/evaluator.h"

#include <gtest/gtest.h>

#include "core/heuristics.h"
#include "datagen/generator.h"
#include "query/parser.h"
#include "query/reference_evaluator.h"
#include "query/xpathmark.h"
#include "xml/importer.h"

namespace natix {
namespace {

// The store borrows the ImportedDocument, so the fixture keeps the
// document at a stable heap address.
struct Fixture {
  std::unique_ptr<ImportedDocument> doc_ptr;
  std::unique_ptr<NatixStore> store_ptr;
  const ImportedDocument& doc() const { return *doc_ptr; }
  NatixStore& store() { return *store_ptr; }
};

// Loads `xml` into a store partitioned by EKM with the given limit.
Fixture MakeFixture(std::string_view xml, TotalWeight limit = 16) {
  Result<ImportedDocument> imp = ImportXml(xml, WeightModel());
  EXPECT_TRUE(imp.ok()) << imp.status().ToString();
  Fixture f;
  f.doc_ptr = std::make_unique<ImportedDocument>(std::move(imp).value());
  Result<Partitioning> p = EkmPartition(f.doc_ptr->tree, limit);
  EXPECT_TRUE(p.ok());
  Result<NatixStore> store = NatixStore::Build(f.doc_ptr->Clone(), *p, limit);
  EXPECT_TRUE(store.ok()) << store.status().ToString();
  f.store_ptr = std::make_unique<NatixStore>(std::move(store).value());
  return f;
}

std::vector<std::string> Labels(const Tree& tree,
                                const std::vector<NodeId>& nodes) {
  std::vector<std::string> out;
  for (const NodeId v : nodes) out.emplace_back(tree.LabelOf(v));
  return out;
}

std::vector<NodeId> RunQuery(Fixture& f, std::string_view query) {
  const Result<PathExpr> path = ParseXPath(query);
  EXPECT_TRUE(path.ok()) << query;
  AccessStats stats;
  StoreQueryEvaluator eval(&f.store(), &stats);
  Result<std::vector<NodeId>> result = eval.Evaluate(*path);
  EXPECT_TRUE(result.ok()) << query << ": " << result.status().ToString();
  return result.ok() ? *result : std::vector<NodeId>{};
}

TEST(QueryEvaluatorTest, RootStep) {
  // The fixture doc must be referenced via the Fixture (store borrows it).
  Fixture f = MakeFixture("<a><b/><c/></a>");
  EXPECT_EQ(RunQuery(f, "/a").size(), 1u);
  EXPECT_TRUE(RunQuery(f, "/nope").empty());
}

TEST(QueryEvaluatorTest, ChildSteps) {
  Fixture f = MakeFixture("<a><b/><c/><b/></a>");
  EXPECT_EQ(RunQuery(f, "/a/b").size(), 2u);
  EXPECT_EQ(RunQuery(f, "/a/c").size(), 1u);
  EXPECT_EQ(RunQuery(f, "/a/*").size(), 3u);
}

TEST(QueryEvaluatorTest, ChildAxisSkipsAttributes) {
  Fixture f = MakeFixture("<a x=\"1\"><b/></a>");
  EXPECT_EQ(RunQuery(f, "/a/*").size(), 1u);
  EXPECT_EQ(RunQuery(f, "/a/node()").size(), 1u);
}

TEST(QueryEvaluatorTest, TextOnNodeAxis) {
  Fixture f = MakeFixture("<a>hi<b/></a>");
  // node() matches the text node and the element.
  EXPECT_EQ(RunQuery(f, "/a/node()").size(), 2u);
  EXPECT_EQ(RunQuery(f, "/a/*").size(), 1u);
}

TEST(QueryEvaluatorTest, DescendantSearch) {
  Fixture f = MakeFixture("<a><b><k/></b><c><d><k/></d></c><k/></a>");
  EXPECT_EQ(RunQuery(f, "//k").size(), 3u);
  EXPECT_EQ(RunQuery(f, "/a//k").size(), 3u);
  EXPECT_EQ(RunQuery(f, "/a/c//k").size(), 1u);
}

TEST(QueryEvaluatorTest, ResultsInDocumentOrderNoDuplicates) {
  Fixture f = MakeFixture("<a><b><k/><k/></b><b><k/></b></a>");
  const std::vector<NodeId> r = RunQuery(f, "//b//k");
  ASSERT_EQ(r.size(), 3u);
  const std::vector<uint32_t> ranks = f.doc().tree.PreorderRanks();
  EXPECT_LT(ranks[r[0]], ranks[r[1]]);
  EXPECT_LT(ranks[r[1]], ranks[r[2]]);
}

TEST(QueryEvaluatorTest, DescendantOrSelfAxis) {
  Fixture f = MakeFixture("<l><x><l><k/></l></x></l>");
  // /descendant-or-self::l: both l elements.
  EXPECT_EQ(RunQuery(f, "/descendant-or-self::l").size(), 2u);
  EXPECT_EQ(RunQuery(f, "/descendant-or-self::l/descendant-or-self::k").size(),
            1u);
}

TEST(QueryEvaluatorTest, ParentPredicate) {
  Fixture f = MakeFixture(
      "<r><na><item/><item/></na><sa><item/></sa><eu><item/></eu></r>");
  EXPECT_EQ(RunQuery(f, "/r/*/item[parent::na or parent::sa]").size(), 3u);
  EXPECT_EQ(RunQuery(f, "/r/*/item[parent::eu]").size(), 1u);
  EXPECT_EQ(RunQuery(f, "/r/*/item[parent::nope]").size(), 0u);
}

TEST(QueryEvaluatorTest, AncestorAxis) {
  Fixture f = MakeFixture("<a><li><x><k/></x></li><li><k/></li><k/></a>");
  // Ancestors of all k's that are li elements: the two distinct li's.
  EXPECT_EQ(RunQuery(f, "//k/ancestor::li").size(), 2u);
}

TEST(QueryEvaluatorTest, AncestorOrSelfAxis) {
  Fixture f = MakeFixture("<m><k/></m>");
  EXPECT_EQ(RunQuery(f, "//k/ancestor-or-self::m").size(), 1u);
  EXPECT_EQ(RunQuery(f, "//m/ancestor-or-self::m").size(), 1u);
}

TEST(QueryEvaluatorTest, AndPredicate) {
  Fixture f = MakeFixture("<a><b><c/><d/></b><b><c/></b></a>");
  EXPECT_EQ(RunQuery(f, "/a/b[c and d]").size(), 1u);
  EXPECT_EQ(RunQuery(f, "/a/b[c or d]").size(), 2u);
  EXPECT_EQ(RunQuery(f, "/a/b[c/e]").size(), 0u);
}

TEST(QueryEvaluatorTest, NavigationIsCharged) {
  Fixture f = MakeFixture("<a><b><k/></b><c><k/></c></a>");
  const Result<PathExpr> path = ParseXPath("//k");
  ASSERT_TRUE(path.ok());
  AccessStats stats;
  StoreQueryEvaluator eval(&f.store(), &stats);
  ASSERT_TRUE(eval.Evaluate(*path).ok());
  EXPECT_GT(stats.TotalMoves(), 0u);
}

TEST(QueryEvaluatorTest, RelativeQueryRejected) {
  Fixture f = MakeFixture("<a/>");
  const Result<PathExpr> path = ParseXPath("a/b");
  ASSERT_TRUE(path.ok());
  AccessStats stats;
  StoreQueryEvaluator eval(&f.store(), &stats);
  EXPECT_FALSE(eval.Evaluate(*path).ok());
}

// Cross-validation: the store evaluator must agree with the independent
// tree evaluator on every XPathMark query over an XMark sample, for
// several partitionings.
TEST(QueryEvaluatorTest, AgreesWithReferenceOnXmark) {
  WeightModel model;
  model.max_node_slots = 256;
  const std::string xml = GenerateXmark(17, 0.03);
  Result<ImportedDocument> impr = ImportXml(xml, model);
  ASSERT_TRUE(impr.ok());
  const ImportedDocument doc = std::move(impr).value();

  for (auto* partition_fn : {&EkmPartition, &KmPartition, &RsPartition}) {
    const Result<Partitioning> p = (*partition_fn)(doc.tree, 256);
    ASSERT_TRUE(p.ok());
    const Result<NatixStore> store = NatixStore::Build(doc.Clone(), *p, 256);
    ASSERT_TRUE(store.ok());
    for (const XPathMarkQuery& q : XPathMarkQueries()) {
      const Result<PathExpr> path = ParseXPath(q.text);
      ASSERT_TRUE(path.ok()) << q.id;
      AccessStats stats;
      StoreQueryEvaluator eval(&*store, &stats);
      const Result<std::vector<NodeId>> via_store = eval.Evaluate(*path);
      const Result<std::vector<NodeId>> via_tree =
          EvaluateOnTree(doc.tree, *path);
      ASSERT_TRUE(via_store.ok()) << q.id;
      ASSERT_TRUE(via_tree.ok()) << q.id;
      EXPECT_EQ(*via_store, *via_tree) << q.id;
      EXPECT_FALSE(via_store->empty())
          << q.id << " returned nothing -- workload not exercised";
    }
  }
}

TEST(QueryEvaluatorTest, LabelsSanity) {
  Fixture f = MakeFixture("<a><b/><c/></a>");
  const std::vector<NodeId> r = RunQuery(f, "/a/*");
  EXPECT_EQ(Labels(f.doc().tree, r),
            (std::vector<std::string>{"b", "c"}));
}

}  // namespace
}  // namespace natix
