// Property tests certifying the paper's central claims against exhaustive
// enumeration on small random trees:
//   * DHW is optimal: minimal cardinality AND minimal root weight among
//     minimal partitionings (leanness), Sec. 2.2 / Sec. 3.3.5.
//   * GHDW and all heuristics are feasible and never beat the optimum.
//   * EKM/GHDW are near-optimal in practice (bounded gap on the sample).
//   * Lemma 4's nearly-optimal machinery: the brute-force nearly optimal
//     root weight matches what DHW's ΔW bookkeeping relies on.
#include <gtest/gtest.h>

#include "core/brute_force.h"
#include "core/exact_algorithms.h"
#include "core/heuristics.h"
#include "tests/test_util.h"

namespace natix {
namespace {

using testing_util::MustBeFeasible;

struct PropertyCase {
  uint64_t seed;
  size_t max_nodes;
  Weight max_weight;
  TotalWeight extra_limit;  // limit = MaxNodeWeight() + extra
};

class OptimalityPropertyTest : public ::testing::TestWithParam<PropertyCase> {
};

TEST_P(OptimalityPropertyTest, DhwMatchesBruteForce) {
  const PropertyCase& c = GetParam();
  Rng rng(c.seed);
  for (int iter = 0; iter < 25; ++iter) {
    const size_t n = 2 + rng.NextBounded(c.max_nodes - 1);
    const Tree t = testing_util::RandomTree(rng, n, c.max_weight);
    const TotalWeight k = t.MaxNodeWeight() + rng.NextBounded(c.extra_limit);
    const Result<BruteForceResult> bf = BruteForceOptimal(t, k);
    ASSERT_TRUE(bf.ok()) << TreeToSpec(t) << " K=" << k;

    const Result<Partitioning> dhw = DhwPartition(t, k);
    ASSERT_TRUE(dhw.ok()) << TreeToSpec(t) << " K=" << k;
    const PartitionAnalysis a = MustBeFeasible(t, *dhw, k, TreeToSpec(t));
    EXPECT_EQ(a.cardinality, bf->min_cardinality)
        << TreeToSpec(t) << " K=" << k << " dhw=" << ToString(t, *dhw)
        << " brute=" << ToString(t, bf->best);
    EXPECT_EQ(a.root_weight, bf->min_root_weight)
        << "leanness violated: " << TreeToSpec(t) << " K=" << k
        << " dhw=" << ToString(t, *dhw)
        << " brute=" << ToString(t, bf->best);
  }
}

TEST_P(OptimalityPropertyTest, HeuristicsFeasibleAndBoundedByOptimum) {
  const PropertyCase& c = GetParam();
  Rng rng(c.seed ^ 0xabcdef);
  for (int iter = 0; iter < 25; ++iter) {
    const size_t n = 2 + rng.NextBounded(c.max_nodes - 1);
    const Tree t = testing_util::RandomTree(rng, n, c.max_weight);
    const TotalWeight k = t.MaxNodeWeight() + rng.NextBounded(c.extra_limit);
    const Result<BruteForceResult> bf = BruteForceOptimal(t, k);
    ASSERT_TRUE(bf.ok());

    const struct {
      const char* name;
      Result<Partitioning> (*fn)(const Tree&, TotalWeight);
    } heuristics[] = {
        {"DFS", &DfsPartition}, {"BFS", &BfsPartition}, {"RS", &RsPartition},
        {"KM", &KmPartition},   {"EKM", &EkmPartition},
    };
    for (const auto& h : heuristics) {
      const Result<Partitioning> p = h.fn(t, k);
      ASSERT_TRUE(p.ok()) << h.name << " " << TreeToSpec(t) << " K=" << k;
      const PartitionAnalysis a = MustBeFeasible(
          t, *p, k, std::string(h.name) + " " + TreeToSpec(t));
      EXPECT_GE(a.cardinality, bf->min_cardinality)
          << h.name << " beat the optimum?! " << TreeToSpec(t);
    }

    const Result<Partitioning> g = GhdwPartition(t, k);
    ASSERT_TRUE(g.ok());
    const PartitionAnalysis ag = MustBeFeasible(t, *g, k, TreeToSpec(t));
    EXPECT_GE(ag.cardinality, bf->min_cardinality);
    // Fig. 6 shows GHDW can exceed the optimum, but on trees this small
    // never by more than the number of inner nodes.
    EXPECT_LE(ag.cardinality, bf->min_cardinality + n);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OptimalityPropertyTest,
    ::testing::Values(
        // Tiny trees, tiny weights: many ties, stresses leanness.
        PropertyCase{101, 6, 2, 4}, PropertyCase{102, 6, 3, 6},
        // Unit weights: pure structure.
        PropertyCase{103, 9, 1, 5},
        // Mixed weights, tight limits: forces many intervals.
        PropertyCase{104, 9, 4, 3}, PropertyCase{105, 10, 5, 6},
        // Wider weight range, looser limits: mixes joined/cut children.
        PropertyCase{106, 8, 6, 10}, PropertyCase{107, 10, 3, 8},
        PropertyCase{108, 11, 2, 5}, PropertyCase{109, 7, 7, 7},
        PropertyCase{110, 10, 4, 12}),
    [](const ::testing::TestParamInfo<PropertyCase>& info) {
      return "seed" + std::to_string(info.param.seed) + "_n" +
             std::to_string(info.param.max_nodes) + "_w" +
             std::to_string(info.param.max_weight);
    });

// The chains built by RandomTree can be deep relative to n; also cover
// explicitly flat and explicitly deep shapes.
TEST(OptimalityShapeTest, FlatTreesDhwEqualsFdw) {
  Rng rng(55);
  for (int iter = 0; iter < 40; ++iter) {
    const Tree t = testing_util::RandomFlatTree(rng, 2 + rng.NextBounded(9), 4);
    const TotalWeight k = t.MaxNodeWeight() + rng.NextBounded(6);
    const Result<Partitioning> d = DhwPartition(t, k);
    const Result<Partitioning> f = FdwPartition(t, k);
    ASSERT_TRUE(d.ok() && f.ok());
    const PartitionAnalysis ad = MustBeFeasible(t, *d, k);
    const PartitionAnalysis af = MustBeFeasible(t, *f, k);
    EXPECT_EQ(ad.cardinality, af.cardinality) << TreeToSpec(t) << " K=" << k;
    EXPECT_EQ(ad.root_weight, af.root_weight) << TreeToSpec(t) << " K=" << k;
  }
}

TEST(OptimalityShapeTest, ChainsAreOptimallyCut) {
  // On a unit-weight chain of n nodes the optimum is ceil(n / K).
  for (const size_t n : {1u, 2u, 5u, 7u, 10u}) {
    Tree t;
    NodeId v = t.AddRoot(1);
    for (size_t i = 1; i < n; ++i) v = t.AppendChild(v, 1);
    for (const TotalWeight k : {1u, 2u, 3u, 4u}) {
      const Result<Partitioning> p = DhwPartition(t, k);
      ASSERT_TRUE(p.ok());
      const PartitionAnalysis a = MustBeFeasible(t, *p, k);
      EXPECT_EQ(a.cardinality, (n + k - 1) / k) << "n=" << n << " K=" << k;
    }
  }
}

TEST(OptimalityShapeTest, NearlyOptimalRootWeightNeverHeavier) {
  // A lean nearly-minimal partitioning can always match or undercut the
  // optimal root weight (cutting one more node never forces a heavier
  // root). Lemma 4's construction only materializes the *useful* cases
  // (strictly smaller root weight); DHW's optimality on these same trees
  // (DhwMatchesBruteForce) certifies that bookkeeping end to end.
  Rng rng(77);
  int with_near = 0;
  for (int iter = 0; iter < 60; ++iter) {
    const Tree t = testing_util::RandomTree(rng, 2 + rng.NextBounded(8), 3);
    const TotalWeight k = t.MaxNodeWeight() + rng.NextBounded(6);
    const Result<BruteForceResult> bf = BruteForceOptimal(t, k);
    ASSERT_TRUE(bf.ok());
    if (!bf->has_nearly_optimal) continue;
    ++with_near;
    EXPECT_LE(bf->nearly_optimal_root_weight, bf->min_root_weight)
        << TreeToSpec(t) << " K=" << k;
  }
  EXPECT_GT(with_near, 5);  // the sample must actually exercise the lemma
}

}  // namespace
}  // namespace natix
